#include "obs/profiler.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>

#if defined(__linux__) || defined(__APPLE__)
#include <csignal>
#include <cxxabi.h>
#include <execinfo.h>
#include <sys/time.h>
#define PARAPLL_HAVE_PROFILER 1
#endif

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace parapll::obs {

// --- request contexts ----------------------------------------------------

namespace {
// Plain POD thread-local so the SIGPROF handler can read it: local-exec
// TLS in a statically linked object is initialized at thread creation and
// involves no lazy allocation.
thread_local std::uint64_t t_request_context = 0;
}  // namespace

std::uint64_t CurrentRequestContext() { return t_request_context; }

void SetCurrentRequestContext(std::uint64_t id) { t_request_context = id; }

std::uint64_t NextQueryBatchContext() {
  static std::atomic<std::uint64_t> next{0};
  // relaxed: a unique ticket is all that is needed; no data is published.
  return MakeContextId(ContextKind::kQueryBatch,
                       next.fetch_add(1, std::memory_order_relaxed) + 1);
}

std::string ContextIdToString(std::uint64_t id) {
  if (id == 0) {
    return "none";
  }
  const std::uint64_t payload = ContextPayloadOf(id);
  switch (ContextKindOf(id)) {
    case ContextKind::kNone:
      return "none/" + std::to_string(payload);
    case ContextKind::kQueryBatch:
      return "query_batch/" + std::to_string(payload);
    case ContextKind::kBuildRoot:
      return "build_root/" + std::to_string(payload);
  }
  return "kind" + std::to_string(static_cast<unsigned>(ContextKindOf(id))) +
         "/" + std::to_string(payload);
}

// --- sample capture ------------------------------------------------------

#ifdef PARAPLL_HAVE_PROFILER

namespace {

// One captured stack, written by exactly one thread's signal handler.
struct RawSample {
  static constexpr int kMaxFrames = 32;

  std::uint64_t mono_ns = 0;
  std::uint64_t context = 0;
  std::uint32_t depth = 0;
  void* frames[kMaxFrames] = {};
};

// Per-thread SPSC ring: the owning thread's handler is the only producer;
// the drain in Stop() is the only consumer, and it runs only after every
// handler has retired (inflight == 0), so head/tail never race.
struct alignas(64) SampleRing {
  std::atomic<std::uint32_t> head{0};
  std::atomic<std::uint32_t> tail{0};
  std::atomic<std::uint64_t> dropped{0};  // ring-full rejects
  RawSample* slots = nullptr;             // into ProfilerState::slab
  std::uint32_t capacity = 0;
};

// Handler-visible lock-free state. The ring pool pointer is published by
// the g_active store in Start() and never dereferenced unless the handler
// observed active == true.
std::atomic<bool> g_active{false};
std::atomic<std::uint32_t> g_inflight{0};
std::atomic<std::uint64_t> g_generation{0};
std::atomic<std::uint32_t> g_claimed{0};
std::atomic<std::uint64_t> g_lost{0};  // pool-exhausted rejects
SampleRing* g_rings = nullptr;
std::uint32_t g_ring_count = 0;

// Which ring this thread writes to, valid while its generation matches.
thread_local SampleRing* t_ring = nullptr;
thread_local std::uint64_t t_ring_generation = 0;

// Serializes Start/Stop and owns the sample storage. The handler never
// touches this; it sees only the lock-free globals above.
struct ProfilerState {
  util::Mutex mutex;
  bool running GUARDED_BY(mutex) = false;
  ProfilerOptions options GUARDED_BY(mutex);
  std::uint64_t start_ns GUARDED_BY(mutex) = 0;
  struct sigaction old_action GUARDED_BY(mutex) = {};
  std::unique_ptr<SampleRing[]> rings GUARDED_BY(mutex);
  std::unique_ptr<RawSample[]> slab GUARDED_BY(mutex);
};

ProfilerState& State() {
  static ProfilerState* state = new ProfilerState();  // leaked: outlives all threads
  return *state;
}

}  // namespace

// The SIGPROF handler. Async-signal-safe by construction: atomics, plain
// TLS reads, clock_gettime (via the primed TraceNowNs) and backtrace(3)
// (primed in Start so libgcc is already loaded) — no allocation, no
// locks, no stdio. tools/parapll_lint.py enforces the ban over the marked
// region below (rule signal-context-banned-call).
// parapll-lint: begin-signal-context
extern "C" void ParaPllProfilerSignalHandler(int /*signo*/, siginfo_t*,
                                             void*) {
  const int saved_errno = errno;
  // seq_cst (this fetch_add and the g_active load below): Dekker-style
  // handshake with Stop(), which stores g_active = false and then reads
  // g_inflight; seq_cst forbids the interleaving where Stop() reads
  // inflight == 0 while this handler still reads active == true, so the
  // drain can never run concurrently with a ring write.
  g_inflight.fetch_add(1, std::memory_order_seq_cst);
  if (g_active.load(std::memory_order_seq_cst)) {
    // relaxed: the generation only changes while the profiler is stopped
    // and every handler has retired, so any value read here is stable for
    // the whole signal delivery.
    const std::uint64_t generation =
        g_generation.load(std::memory_order_relaxed);
    if (t_ring_generation != generation) {
      // relaxed: a unique ticket into the preallocated pool; the pool
      // itself was published by the g_active handshake above.
      const std::uint32_t index =
          g_claimed.fetch_add(1, std::memory_order_relaxed);
      t_ring = index < g_ring_count ? &g_rings[index] : nullptr;
      t_ring_generation = generation;
    }
    SampleRing* ring = t_ring;
    if (ring == nullptr) {
      // relaxed: independent loss statistic, read after quiescence.
      g_lost.fetch_add(1, std::memory_order_relaxed);
    } else {
      // relaxed (head) / relaxed (tail): SPSC — this thread is the only
      // producer and the consumer runs only after quiescence, so the
      // indices cannot move under us during one delivery.
      const std::uint32_t head = ring->head.load(std::memory_order_relaxed);
      const std::uint32_t tail = ring->tail.load(std::memory_order_relaxed);
      if (head - tail >= ring->capacity) {
        // relaxed: independent loss statistic, read after quiescence.
        ring->dropped.fetch_add(1, std::memory_order_relaxed);
      } else {
        RawSample& slot = ring->slots[head % ring->capacity];
        slot.mono_ns = TraceNowNs();
        slot.context = t_request_context;
        const int depth = ::backtrace(slot.frames, RawSample::kMaxFrames);
        slot.depth = depth > 0 ? static_cast<std::uint32_t>(depth) : 0;
        // release: publishes the slot write before the head bump so the
        // drain (which loads head with acquire) sees a complete sample.
        ring->head.store(head + 1, std::memory_order_release);
      }
    }
  }
  // seq_cst: second half of the Dekker handshake with Stop(), see above.
  g_inflight.fetch_sub(1, std::memory_order_seq_cst);
  errno = saved_errno;
}
// parapll-lint: end-signal-context

namespace {

// "module(_ZN7parapll3FooEv+0x1a) [0x55d1c2]" -> demangled name, with
// graceful fallbacks for missing symbols (static functions without
// -rdynamic symbolize as "module+0x1a").
std::string ParseSymbolLine(const char* line, const void* addr) {
  const std::string text = line != nullptr ? line : "";
  const std::size_t open = text.find('(');
  std::string name;
  std::string offset;
  if (open != std::string::npos) {
    const std::size_t close = text.find(')', open);
    const std::size_t plus = text.find('+', open);
    if (plus != std::string::npos && close != std::string::npos &&
        plus < close) {
      name = text.substr(open + 1, plus - open - 1);
      offset = text.substr(plus, close - plus);
    } else if (close != std::string::npos) {
      name = text.substr(open + 1, close - open - 1);
    }
  }
  if (!name.empty()) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(name.c_str(), nullptr, nullptr, &status);
    if (demangled != nullptr) {
      if (status == 0) {
        name = demangled;
      }
      std::free(demangled);
    }
  } else {
    // No symbol: fall back to basename(module)+offset, then raw address.
    std::string module = open != std::string::npos ? text.substr(0, open)
                                                   : std::string();
    const std::size_t slash = module.rfind('/');
    if (slash != std::string::npos) {
      module = module.substr(slash + 1);
    }
    if (!module.empty()) {
      name = module + offset;
    } else {
      std::ostringstream hex;
      hex << addr;
      name = hex.str();
    }
  }
  // Collapsed-stack format splits frames on ';'.
  std::replace(name.begin(), name.end(), ';', ',');
  return name;
}

// Leading (leaf-side) frames belonging to signal dispatch itself:
// frames[0] is the handler (backtrace's caller), frames[1] the kernel
// trampoline. Name-based trimming below refines this when symbols are
// available.
constexpr std::uint32_t kHandlerFrameSkip = 2;

bool IsSignalDispatchFrame(const std::string& symbol) {
  return symbol.find("ParaPllProfilerSignalHandler") != std::string::npos ||
         symbol.find("restore_rt") != std::string::npos ||
         symbol.find("_sigtramp") != std::string::npos;
}

void PublishProfileMetrics(const ProfileReport& report) {
  if (!MetricsEnabled()) {
    return;
  }
  auto& registry = Registry::Global();
  registry.GetCounter("profile.samples").Add(report.samples);
  registry.GetCounter("profile.dropped").Add(report.dropped);
  registry.GetGauge("profile.duration_seconds")
      .Set(report.duration_seconds);
  // Top-K hottest contexts (roots / query batches) as gauge triples;
  // unused slots are zeroed so stale values from a previous capture never
  // linger in the exposition.
  std::size_t slot = 0;
  for (const auto& [context, samples] : report.contexts) {
    if (context == 0 || slot >= Profiler::kHotContexts) {
      continue;
    }
    const std::string prefix = "profile.hot." + std::to_string(slot);
    registry.GetGauge(prefix + ".kind")
        .Set(static_cast<double>(
            static_cast<unsigned>(ContextKindOf(context))));
    registry.GetGauge(prefix + ".payload")
        .Set(static_cast<double>(ContextPayloadOf(context)));
    registry.GetGauge(prefix + ".samples").Set(static_cast<double>(samples));
    ++slot;
  }
  for (; slot < Profiler::kHotContexts; ++slot) {
    const std::string prefix = "profile.hot." + std::to_string(slot);
    registry.GetGauge(prefix + ".kind").Set(0.0);
    registry.GetGauge(prefix + ".payload").Set(0.0);
    registry.GetGauge(prefix + ".samples").Set(0.0);
  }
}

}  // namespace

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();  // leaked singleton
  return *profiler;
}

bool Profiler::Supported() { return true; }

void Profiler::Start(ProfilerOptions options) {
  if (options.sample_hz == 0 || options.sample_hz > 10'000) {
    throw std::runtime_error("profiler: sample_hz must be in [1, 10000]");
  }
  if (options.ring_capacity < 64 || options.max_threads == 0) {
    throw std::runtime_error("profiler: ring_capacity >= 64 and at least "
                             "one thread required");
  }
  ProfilerState& state = State();
  util::MutexLock lock(state.mutex);
  if (state.running) {
    throw std::runtime_error("profiler already running");
  }
  // A handler from the previous session could in principle still be
  // retiring; never replace the pool under it.
  // seq_cst: pairs with the handler's seq_cst inflight updates.
  while (g_inflight.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }

  state.options = options;
  state.rings = std::make_unique<SampleRing[]>(options.max_threads);
  state.slab = std::make_unique<RawSample[]>(options.max_threads *
                                             options.ring_capacity);
  for (std::size_t i = 0; i < options.max_threads; ++i) {
    state.rings[i].slots = state.slab.get() + i * options.ring_capacity;
    state.rings[i].capacity =
        static_cast<std::uint32_t>(options.ring_capacity);
  }
  g_rings = state.rings.get();
  g_ring_count = static_cast<std::uint32_t>(options.max_threads);
  // relaxed (claimed/lost): session-reset of independent tallies; the
  // g_active handshake below publishes them together with the pool.
  g_claimed.store(0, std::memory_order_relaxed);
  g_lost.store(0, std::memory_order_relaxed);
  // relaxed: the generation bump is observed by handlers only after the
  // g_active handshake publishes it along with the new pool.
  g_generation.fetch_add(1, std::memory_order_relaxed);

  // Prime every lazy-init path the handler touches: backtrace(3) dlopens
  // libgcc on first use and TraceNowNs() initializes its clock anchor —
  // neither may happen inside a signal.
  void* prime[2];
  (void)::backtrace(prime, 2);
  (void)TraceNowNs();

  // seq_cst: publishes the ring pool to handlers (Dekker handshake
  // partner of the handler's g_active load).
  g_active.store(true, std::memory_order_seq_cst);

  struct sigaction action = {};
  action.sa_sigaction = &ParaPllProfilerSignalHandler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (::sigaction(SIGPROF, &action, &state.old_action) != 0) {
    // seq_cst: roll the handshake back, see above.
    g_active.store(false, std::memory_order_seq_cst);
    throw std::runtime_error("profiler: sigaction(SIGPROF) failed");
  }

  itimerval timer = {};
  const long interval_us =
      static_cast<long>(1'000'000 / options.sample_hz);
  timer.it_interval.tv_sec = interval_us / 1'000'000;
  timer.it_interval.tv_usec = interval_us % 1'000'000;
  timer.it_value = timer.it_interval;
  if (::setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    ::sigaction(SIGPROF, &state.old_action, nullptr);
    // seq_cst: roll the handshake back, see above.
    g_active.store(false, std::memory_order_seq_cst);
    throw std::runtime_error("profiler: setitimer(ITIMER_PROF) failed");
  }
  state.start_ns = TraceNowNs();
  state.running = true;
}

ProfileReport Profiler::Stop() {
  ProfilerState& state = State();
  util::MutexLock lock(state.mutex);
  ProfileReport report;
  if (!state.running) {
    return report;
  }
  // Disarm first (no new timer firings), restore the old disposition (no
  // new handler entries), then handshake any handler already running.
  itimerval zero = {};
  ::setitimer(ITIMER_PROF, &zero, nullptr);
  ::sigaction(SIGPROF, &state.old_action, nullptr);
  // seq_cst (store + loads): Dekker handshake with the handler — after
  // this store, any handler that passed its inflight increment sees
  // active == false, and the wait below outlasts any that saw true.
  g_active.store(false, std::memory_order_seq_cst);
  while (g_inflight.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  state.running = false;
  report.sample_hz = state.options.sample_hz;
  report.duration_seconds =
      static_cast<double>(TraceNowNs() - state.start_ns) / 1e9;

  // --- drain: handlers have quiesced, every ring index is stable -------
  struct Drained {
    const RawSample* raw;
    std::uint32_t tid;
  };
  std::vector<Drained> samples;
  // relaxed: quiesced loss statistic, see the handler.
  report.dropped = g_lost.load(std::memory_order_relaxed);
  for (std::uint32_t r = 0; r < g_ring_count; ++r) {
    SampleRing& ring = state.rings[r];
    // acquire: pairs with the handler's release head store so the slot
    // contents are visible; tail is drain-owned.
    const std::uint32_t head = ring.head.load(std::memory_order_acquire);
    const std::uint32_t tail = ring.tail.load(std::memory_order_relaxed);
    for (std::uint32_t k = tail; k != head; ++k) {
      samples.push_back({&ring.slots[k % ring.capacity], r});
    }
    // relaxed: drain-owned index; handlers are quiesced.
    ring.tail.store(head, std::memory_order_relaxed);
    // relaxed: quiesced loss statistic, see the handler.
    report.dropped += ring.dropped.load(std::memory_order_relaxed);
  }
  report.samples = samples.size();

  // --- lazy symbolization: unique addresses only, demangled once ------
  std::map<const void*, std::uint32_t> name_of_addr;
  std::map<std::string, std::uint32_t> id_of_name;
  std::vector<const void*> unique_addrs;
  for (const Drained& s : samples) {
    for (std::uint32_t f = 0; f < s.raw->depth; ++f) {
      if (name_of_addr.emplace(s.raw->frames[f], 0).second) {
        unique_addrs.push_back(s.raw->frames[f]);
      }
    }
  }
  if (!unique_addrs.empty()) {
    char** lines = ::backtrace_symbols(
        const_cast<void* const*>(
            reinterpret_cast<const void* const*>(unique_addrs.data())),
        static_cast<int>(unique_addrs.size()));
    for (std::size_t i = 0; i < unique_addrs.size(); ++i) {
      const std::string name = ParseSymbolLine(
          lines != nullptr ? lines[i] : nullptr, unique_addrs[i]);
      auto [it, fresh] = id_of_name.emplace(
          name, static_cast<std::uint32_t>(report.symbols.size()));
      if (fresh) {
        report.symbols.push_back(name);
      }
      name_of_addr[unique_addrs[i]] = it->second;
    }
    if (lines != nullptr) {
      std::free(lines);
    }
  }

  // --- aggregate: collapsed stacks, contexts, timeline ----------------
  std::map<std::vector<std::uint32_t>, std::uint64_t> stack_counts;
  std::map<std::uint64_t, std::uint64_t> context_counts;
  report.timeline.reserve(samples.size());
  for (const Drained& s : samples) {
    const RawSample& raw = *s.raw;
    // Trim signal-dispatch frames off the leaf end: the fixed skip
    // covers the handler + trampoline; the name scan catches layouts
    // where dispatch spans a different number of frames.
    std::uint32_t skip = raw.depth > kHandlerFrameSkip ? kHandlerFrameSkip : 0;
    for (std::uint32_t f = 0; f < raw.depth; ++f) {
      if (IsSignalDispatchFrame(
              report.symbols[name_of_addr[raw.frames[f]]])) {
        skip = std::max(skip, f + 1);
      }
    }
    if (skip >= raw.depth) {
      skip = raw.depth > 0 ? raw.depth - 1 : 0;
    }
    std::vector<std::uint32_t> key;
    key.reserve(raw.depth - skip);
    for (std::uint32_t f = raw.depth; f > skip; --f) {  // root first
      key.push_back(name_of_addr[raw.frames[f - 1]]);
    }
    stack_counts[key] += 1;
    context_counts[raw.context] += 1;
    report.timeline.push_back(
        {raw.mono_ns, raw.context, s.tid,
         raw.depth > 0 ? name_of_addr[raw.frames[skip]] : 0});
  }
  report.stacks.reserve(stack_counts.size());
  for (const auto& [key, count] : stack_counts) {
    ProfileStack stack;
    stack.count = count;
    stack.frames.reserve(key.size());
    for (const std::uint32_t id : key) {
      stack.frames.push_back(report.symbols[id]);
    }
    report.stacks.push_back(std::move(stack));
  }
  std::sort(report.stacks.begin(), report.stacks.end(),
            [](const ProfileStack& a, const ProfileStack& b) {
              return a.count > b.count;
            });
  report.contexts.assign(context_counts.begin(), context_counts.end());
  std::sort(report.contexts.begin(), report.contexts.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  PublishProfileMetrics(report);
  return report;
}

bool Profiler::Running() const {
  ProfilerState& state = State();
  util::MutexLock lock(state.mutex);
  return state.running;
}

std::uint64_t Profiler::LiveSampleCount() const {
  ProfilerState& state = State();
  util::MutexLock lock(state.mutex);
  if (!state.running) {
    return 0;
  }
  std::uint64_t total = 0;
  for (std::uint32_t r = 0; r < g_ring_count; ++r) {
    // acquire (head) / relaxed (tail): a live lower bound; pairs with the
    // handler's release store of head.
    total += state.rings[r].head.load(std::memory_order_acquire) -
             state.rings[r].tail.load(std::memory_order_relaxed);
  }
  return total;
}

#else  // !PARAPLL_HAVE_PROFILER

Profiler& Profiler::Global() {
  static Profiler profiler;
  return profiler;
}

bool Profiler::Supported() { return false; }

void Profiler::Start(ProfilerOptions) {
  throw std::runtime_error("profiler: unsupported on this platform");
}

ProfileReport Profiler::Stop() { return {}; }

bool Profiler::Running() const { return false; }

std::uint64_t Profiler::LiveSampleCount() const { return 0; }

#endif  // PARAPLL_HAVE_PROFILER

// --- report export (platform-independent) --------------------------------

void ProfileReport::WriteCollapsed(std::ostream& out) const {
  for (const ProfileStack& stack : stacks) {
    for (std::size_t i = 0; i < stack.frames.size(); ++i) {
      if (i != 0) {
        out << ';';
      }
      out << stack.frames[i];
    }
    out << ' ' << stack.count << '\n';
  }
}

std::string ProfileReport::ToCollapsed() const {
  std::ostringstream out;
  WriteCollapsed(out);
  return out.str();
}

void ProfileReport::WriteChromeJsonWithTrace(std::ostream& out) const {
  util::JsonWriter w(out);
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  TraceSink::Global().AppendChromeEvents(w);
  for (const ProfileTimelineSample& sample : timeline) {
    w.BeginObject();
    w.Key("name").Value(sample.leaf < symbols.size() ? symbols[sample.leaf]
                                                     : "?");
    w.Key("cat").Value("profile");
    w.Key("ph").Value("i");
    w.Key("s").Value("t");
    w.Key("ts").Value(static_cast<double>(sample.mono_ns) / 1e3);
    w.Key("pid").Value(std::uint64_t{1});
    w.Key("tid").Value(std::uint64_t{kProfileTidBase + sample.tid});
    w.Key("args")
        .BeginObject()
        .Key("context")
        .Value(ContextIdToString(sample.context))
        .EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").Value("ms");
  w.EndObject();
  out << '\n';
}

std::uint64_t ProfileReport::SamplesOfKind(ContextKind kind) const {
  std::uint64_t total = 0;
  for (const auto& [context, count] : contexts) {
    if (context != 0 && ContextKindOf(context) == kind) {
      total += count;
    }
  }
  return total;
}

}  // namespace parapll::obs
