// In-process sampling CPU profiler + request-context attribution.
//
// Pieces, bottom up:
//   * RequestContext      — a 64-bit id (kind tag in the top byte, payload
//                           below) carried in a thread-local so profiler
//                           samples, slow-query-log records, and Prometheus
//                           exemplars are joinable on one key. QueryBatch
//                           mints one per batch; the build root loop tags
//                           each root. ScopedRequestContext is the RAII
//                           setter every instrumentation site uses.
//   * Profiler            — a SIGPROF/ITIMER_PROF wall-of-CPU sampler. The
//                           signal handler (async-signal-safe by
//                           construction: no allocation, no locks, no
//                           stdio — see the signal-context lint region in
//                           profiler.cpp) captures a backtrace(3) plus the
//                           current request context into a per-thread
//                           lock-free SPSC ring claimed from a
//                           preallocated pool. Stop() disarms the timer,
//                           quiesces in-flight handlers, drains the rings,
//                           and symbolizes lazily (backtrace_symbols +
//                           __cxa_demangle) into a ProfileReport.
//   * ProfileReport       — aggregated samples: collapsed root-first
//                           stacks ("a;b;c count", flamegraph.pl-ready),
//                           per-context sample counts (hottest roots /
//                           query batches), and a raw timeline exportable
//                           as Chrome-trace JSON merged with the existing
//                           TraceSink span timeline.
//
// Overhead contract: at the default 97 Hz the handler fires ~97 times per
// CPU-second and each capture is a few microseconds, <1% of throughput on
// the measured paths (tests/profiler_test.cpp asserts the budget; the
// rate is documented in EXPERIMENTS.md). Threads that never get a signal
// never touch the profiler at all; request-context tagging is two
// thread-local stores per batch/root, noise next to the work they label.
//
// Platform: Linux/glibc (ITIMER_PROF + <execinfo.h>). Start() throws on
// platforms without both; everything else degrades to no-ops.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace parapll::obs {

// --- request contexts ----------------------------------------------------

// What kind of work a context id labels; packed into the id's top byte.
enum class ContextKind : std::uint8_t {
  kNone = 0,
  kQueryBatch = 1,  // payload: process-wide batch sequence number
  kBuildRoot = 2,   // payload: root rank being indexed
};

constexpr std::uint64_t MakeContextId(ContextKind kind,
                                      std::uint64_t payload) {
  return (static_cast<std::uint64_t>(kind) << 56) |
         (payload & ((std::uint64_t{1} << 56) - 1));
}

constexpr ContextKind ContextKindOf(std::uint64_t id) {
  return static_cast<ContextKind>(id >> 56);
}

constexpr std::uint64_t ContextPayloadOf(std::uint64_t id) {
  return id & ((std::uint64_t{1} << 56) - 1);
}

// Human-readable form, e.g. "query_batch/42", "build_root/1337", "none".
std::string ContextIdToString(std::uint64_t id);

// The calling thread's current context id; 0 (kNone) when unset. The
// backing thread-local is a plain POD slot so the SIGPROF handler may read
// it asynchronously.
std::uint64_t CurrentRequestContext();
void SetCurrentRequestContext(std::uint64_t id);

// Mints a fresh kQueryBatch context id (process-wide atomic sequence).
std::uint64_t NextQueryBatchContext();

// RAII context setter: saves the previous id, restores it on scope exit,
// so nested instrumentation (a traced batch inside a traced request)
// composes.
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(std::uint64_t id)
      : previous_(CurrentRequestContext()) {
    SetCurrentRequestContext(id);
  }
  ~ScopedRequestContext() { SetCurrentRequestContext(previous_); }

  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

 private:
  std::uint64_t previous_;
};

// --- profiler ------------------------------------------------------------

struct ProfilerOptions {
  // Samples per CPU-second (ITIMER_PROF counts user+sys CPU across all
  // threads). 97 is prime so sampling cannot phase-lock with periodic
  // work; see EXPERIMENTS.md for the overhead budget at this rate.
  static constexpr std::uint64_t kDefaultSampleHz = 97;

  std::uint64_t sample_hz = kDefaultSampleHz;
  // Per-thread ring capacity in samples; a full ring counts drops instead
  // of blocking or reallocating (the handler may never allocate).
  std::size_t ring_capacity = 8192;
  // Ring pool size == max distinct threads that can receive a sample.
  std::size_t max_threads = 64;
};

// One aggregated call stack: root-first symbolized frames + sample count.
struct ProfileStack {
  std::vector<std::string> frames;  // outermost caller first
  std::uint64_t count = 0;
};

// One raw sample kept for timeline export (frames dropped after
// aggregation; the leaf survives as a symbol index).
struct ProfileTimelineSample {
  std::uint64_t mono_ns = 0;  // TraceNowNs() at capture
  std::uint64_t context = 0;  // request context id (0 = none)
  std::uint32_t tid = 0;      // ring index, stable per thread
  std::uint32_t leaf = 0;     // index into ProfileReport::symbols
};

struct ProfileReport {
  std::uint64_t samples = 0;        // captured into rings
  std::uint64_t dropped = 0;        // ring-full + pool-exhausted rejects
  double duration_seconds = 0.0;    // Start() -> Stop() wall time
  std::uint64_t sample_hz = 0;

  // Aggregated stacks, most samples first.
  std::vector<ProfileStack> stacks;
  // (context id, samples) for every context seen, most samples first.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> contexts;
  // Symbol table for timeline leaves.
  std::vector<std::string> symbols;
  std::vector<ProfileTimelineSample> timeline;

  // Collapsed-stack text, one "frame;frame;frame count" line per stack —
  // pipe straight into flamegraph.pl.
  void WriteCollapsed(std::ostream& out) const;
  [[nodiscard]] std::string ToCollapsed() const;

  // Chrome-trace JSON ({"traceEvents":[...]}) carrying both the TraceSink
  // span timeline and this report's samples as instant events, so one
  // Perfetto load shows spans with the CPU samples that landed in them.
  // Profiler sample tids are offset by kProfileTidBase to keep them from
  // colliding with TraceSink thread ids.
  static constexpr std::uint32_t kProfileTidBase = 1000;
  void WriteChromeJsonWithTrace(std::ostream& out) const;

  // Samples attributed to each kind, for quick build-vs-query splits.
  [[nodiscard]] std::uint64_t SamplesOfKind(ContextKind kind) const;
};

// Process-wide sampling profiler. The SIGPROF disposition and ITIMER_PROF
// are per-process resources, so this is a singleton; Start/Stop pairs
// must not overlap (Start throws while running).
class Profiler {
 public:
  static Profiler& Global();

  // True when this build can profile (Linux/glibc signal + backtrace).
  [[nodiscard]] static bool Supported();

  // Installs the SIGPROF handler and arms ITIMER_PROF. Throws
  // std::runtime_error when unsupported, already running, or the timer
  // cannot be armed. Allocates every ring up front and primes
  // backtrace(3)/TraceNowNs() so the handler itself never allocates.
  void Start(ProfilerOptions options = {});

  // Disarms the timer, restores the previous SIGPROF disposition, waits
  // for in-flight handlers to retire, then drains + symbolizes. With
  // metrics enabled, publishes profile.samples / profile.dropped counters
  // and profile.hot.<i>.{context,samples} gauges for the top-K hottest
  // contexts. Returns an empty report when not running.
  ProfileReport Stop();

  [[nodiscard]] bool Running() const;

  // Samples captured so far (cheap; readable while running).
  [[nodiscard]] std::uint64_t LiveSampleCount() const;

  // Top-K contexts published as gauges by Stop().
  static constexpr std::size_t kHotContexts = 8;

 private:
  Profiler() = default;
};

}  // namespace parapll::obs
