// Runtime telemetry: a background sampler that turns the pull-at-exit
// metrics registry into a live time series.
//
// Pieces, bottom up:
//   * ReadProcessStats()  — RSS / peak RSS / user+sys CPU / thread count
//                           from /proc/self (zeros + valid=false when the
//                           platform has no procfs).
//   * ProbeRegistry       — named callbacks sampled on demand; each probe
//                           Set()s a gauge in the metrics Registry, so
//                           state that is too hot to update inline (label
//                           store bytes during a build) is still visible
//                           per sample. ScopedProbe is the RAII form.
//   * TelemetrySampler    — a background thread that, every `period`,
//                           collects the probes, snapshots the registry
//                           plus process stats into a fixed-capacity ring
//                           buffer, and optionally appends one JSON line
//                           per sample to a file (--telemetry-jsonl).
//   * ScopedSignalFlush   — runs registered flush callbacks on SIGINT /
//                           SIGTERM, then _exits with 128+signo, so a
//                           long run interrupted at the terminal still
//                           writes its metrics/telemetry files.
//
// Overhead contract: nothing here touches the query or indexing hot
// paths. Instrumented code keeps its single relaxed MetricsEnabled()
// load; the sampler only *reads* shared atomics on its own thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace parapll::obs {

// Point-in-time process resource usage, read from /proc/self.
struct ProcessStats {
  std::uint64_t rss_bytes = 0;       // VmRSS
  std::uint64_t peak_rss_bytes = 0;  // VmHWM
  double user_cpu_seconds = 0.0;     // utime
  double sys_cpu_seconds = 0.0;      // stime
  std::uint64_t threads = 0;
  bool valid = false;  // false when /proc/self was unreadable
};

// Reads /proc/self/status and /proc/self/stat. Never throws; on platforms
// without procfs every field is zero and valid is false.
ProcessStats ReadProcessStats();

// Named gauge callbacks collected right before each telemetry sample and
// each /metrics scrape. Register state that is cheap to *read* but too
// hot to push into a gauge inline (e.g. ConcurrentLabelStore memory).
class ProbeRegistry {
 public:
  using Probe = std::function<double()>;

  static ProbeRegistry& Global();

  // Registers `probe`; every Collect() runs it and Set()s the gauge
  // `gauge_name` in Registry::Global(). Returns an id for Remove().
  std::uint64_t Add(std::string gauge_name, Probe probe);
  void Remove(std::uint64_t id);

  // Runs every registered probe. Probes must be thread-safe: Collect is
  // called from the sampler thread and the stats endpoint.
  void Collect();

  [[nodiscard]] std::size_t Size() const;

 private:
  ProbeRegistry() = default;

  struct Entry {
    std::uint64_t id;
    std::string gauge_name;
    Probe probe;
  };

  mutable util::Mutex mutex_;
  std::uint64_t next_id_ GUARDED_BY(mutex_) = 1;
  std::vector<Entry> entries_ GUARDED_BY(mutex_);
};

// RAII probe registration; the probe must stay callable (and thread-safe)
// for the lifetime of this object.
class ScopedProbe {
 public:
  ScopedProbe(std::string gauge_name, ProbeRegistry::Probe probe)
      : id_(ProbeRegistry::Global().Add(std::move(gauge_name),
                                        std::move(probe))) {}
  ~ScopedProbe() { ProbeRegistry::Global().Remove(id_); }

  ScopedProbe(const ScopedProbe&) = delete;
  ScopedProbe& operator=(const ScopedProbe&) = delete;

 private:
  std::uint64_t id_;
};

// One periodic observation.
struct TelemetrySample {
  std::uint64_t seq = 0;      // 0-based sample number since Start()
  std::uint64_t mono_ns = 0;  // TraceNowNs() at sampling time
  ProcessStats process;
  RegistrySnapshot registry;
};

struct TelemetryOptions {
  std::chrono::milliseconds period{100};
  // Ring buffer keeps the most recent `ring_capacity` samples for
  // in-process consumers (the stats endpoint, tests).
  std::size_t ring_capacity = 512;
  // When non-empty, every sample is appended to this file as one JSON
  // line (flushed per line; the file survives a crash of the next line).
  std::string jsonl_path;
};

// Background sampling thread. Start() spawns it; Stop() (or destruction)
// takes one final sample so short runs still record their end state.
class TelemetrySampler {
 public:
  explicit TelemetrySampler(TelemetryOptions options);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  // Throws std::runtime_error when jsonl_path cannot be opened.
  void Start();
  // Idempotent; joins the thread after a final synchronous sample.
  void Stop();
  [[nodiscard]] bool Running() const;

  // Takes a sample immediately (also rings it / writes the JSONL line).
  // Safe from any thread.
  TelemetrySample SampleNow();

  // Copy of the ring, oldest first.
  [[nodiscard]] std::vector<TelemetrySample> Samples() const;
  // Samples taken since Start(), including ones the ring has evicted.
  [[nodiscard]] std::uint64_t TotalSamples() const;

  // Serializes one sample as a single JSON line (no trailing newline).
  // Histograms are compacted to count/sum/mean/p50/p90/p99/max.
  static void WriteJsonLine(const TelemetrySample& sample, std::ostream& out);

 private:
  TelemetrySample CollectSample();
  void Loop();

  TelemetryOptions options_;  // written by the ctor only, then read-only
  mutable util::Mutex mutex_;
  util::CondVar cv_;
  // The worker handle is guarded too: Stop() moves it to a local under
  // the lock, so a concurrent double-Stop can never join the same thread
  // twice (the loser sees running_ == false and returns).
  std::thread worker_ GUARDED_BY(mutex_);
  bool running_ GUARDED_BY(mutex_) = false;
  bool stop_requested_ GUARDED_BY(mutex_) = false;
  std::uint64_t seq_ GUARDED_BY(mutex_) = 0;
  std::deque<TelemetrySample> ring_ GUARDED_BY(mutex_);
  std::unique_ptr<std::ofstream> out_ GUARDED_BY(mutex_);
};

// --- flush-on-signal -----------------------------------------------------

// Registers `flush` to run when the process receives SIGINT or SIGTERM;
// after every registered callback has run the process _exits with
// 128+signo. Callbacks run on a dedicated watcher thread (woken through a
// self-pipe), never inside the signal handler, so they may do normal file
// I/O. Returns an id for RemoveSignalFlush().
std::uint64_t AddSignalFlush(std::function<void()> flush);
void RemoveSignalFlush(std::uint64_t id);

// RAII form; unregisters on destruction (normal, uninterrupted exit).
class ScopedSignalFlush {
 public:
  explicit ScopedSignalFlush(std::function<void()> flush)
      : id_(AddSignalFlush(std::move(flush))) {}
  ~ScopedSignalFlush() { RemoveSignalFlush(id_); }

  ScopedSignalFlush(const ScopedSignalFlush&) = delete;
  ScopedSignalFlush& operator=(const ScopedSignalFlush&) = delete;

 private:
  std::uint64_t id_;
};

namespace internal {
// Test hook: runs the registered flush callbacks without exiting.
void RunSignalFlushCallbacksForTest();
}  // namespace internal

}  // namespace parapll::obs
