// Rolling-window metric views + serving SLO gauges.
//
// The registry's counters and histograms are process-lifetime-cumulative:
// good for totals, useless for "p99 over the last minute". RollingWindow
// layers windowed views on top without touching the hot path — it
// snapshots tracked metrics, closes fixed-width intervals as time
// advances, and keeps a ring of per-interval *deltas* (histogram bucket
// deltas, counter deltas). Windowed values merge the ring plus the
// still-open interval, so they decay as old intervals fall out.
//
// Advance() is lazy: nothing ticks in the background. The intended driver
// is a pull-gauge probe (obs/telemetry.hpp) — ProbeRegistry::Collect()
// runs before every /metrics render, so each scrape closes whatever
// intervals elapsed since the previous one. When a single Advance() spans
// several intervals, the whole delta is attributed to the most recent
// closed interval (the exact sub-interval timing is unknowable after the
// fact); totals over the window stay exact.
//
// ServeSloGauges packages the serving use case: it tracks the daemon's
// request-latency histogram and request/shed counters and publishes
// windowed gauges under "server.window.*" —
//   p50_ms / p99_ms      windowed latency quantiles
//   qps                  requests per second over the window
//   shed_rate            shed / requests over the window
//   slo_violation_rate   fraction of requests slower than the objective
//   slo_burn_rate        violation_rate / (1 - slo_target): 1.0 burns the
//                        error budget exactly as fast as it accrues
// All six are computed by one registered probe per scrape; the latency
// objective (--slo-ms) and target come from ServeSloOptions.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace parapll::obs {

struct RollingWindowOptions {
  std::uint64_t interval_ns = 1'000'000'000;  // width of one ring slot
  std::size_t intervals = 60;                 // slots kept (window span)
};

class RollingWindow {
 public:
  explicit RollingWindow(RollingWindowOptions options = {});

  // Registers a registry metric to window. Call before the first
  // Advance(); the handle lookup registers the metric if it is new.
  void TrackHistogram(std::string_view name);
  void TrackCounter(std::string_view name);

  // Closes every interval that elapsed before `now_ns` (the first call
  // only anchors the window and snapshots baselines). Thread-safe.
  void Advance(std::uint64_t now_ns);

  // Windowed views: ring deltas merged with the open interval's delta
  // (live value minus the last closed baseline). Unknown names return
  // empty/zero. Thread-safe.
  [[nodiscard]] HistogramSnapshot WindowedHistogram(
      std::string_view name) const;
  [[nodiscard]] std::uint64_t WindowedCounter(std::string_view name) const;

  // Seconds the current window actually covers: closed slots plus the
  // open interval's age. 0 before the first Advance().
  [[nodiscard]] double WindowedSeconds(std::uint64_t now_ns) const;
  [[nodiscard]] double RatePerSecond(std::string_view name,
                                     std::uint64_t now_ns) const;

 private:
  struct TrackedHistogram {
    std::string name;
    const Histogram* histogram = nullptr;
    HistogramSnapshot baseline;            // cumulative at last close
    std::deque<HistogramSnapshot> deltas;  // oldest first
  };
  struct TrackedCounter {
    std::string name;
    const Counter* counter = nullptr;
    std::uint64_t baseline = 0;
    std::deque<std::uint64_t> deltas;
  };

  void AdvanceLocked(std::uint64_t now_ns) REQUIRES(mutex_);

  RollingWindowOptions options_;  // written by the ctor only
  mutable util::Mutex mutex_;
  std::vector<TrackedHistogram> histograms_ GUARDED_BY(mutex_);
  std::vector<TrackedCounter> counters_ GUARDED_BY(mutex_);
  // Start of the still-open interval; 0 until the first Advance().
  std::uint64_t open_start_ns_ GUARDED_BY(mutex_) = 0;
};

struct ServeSloOptions {
  RollingWindowOptions window;
  double slo_ms = 50.0;     // latency objective for one request
  double slo_target = 0.99; // fraction of requests that must meet it
};

// Computed windowed serving stats; exposed for tests and direct callers.
struct WindowedServeStats {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;
  double shed_rate = 0.0;
  double slo_violation_rate = 0.0;
  double slo_burn_rate = 0.0;
};

class ServeSloGauges {
 public:
  explicit ServeSloGauges(ServeSloOptions options = {});

  // Advances the window to `now_ns`, publishes all "server.window.*"
  // gauges, and returns the computed stats. Thread-safe; also invoked by
  // the registered probe on every /metrics scrape.
  WindowedServeStats Collect(std::uint64_t now_ns);

 private:
  ServeSloOptions options_;  // written by the ctor only
  RollingWindow window_;
  // One probe drives all six gauges: it Collect()s (which Set()s the
  // other five directly) and returns p50_ms as its own gauge value.
  // Emplaced last in the ctor so a concurrent scrape never sees a
  // half-tracked window.
  std::optional<ScopedProbe> probe_;
};

}  // namespace parapll::obs
