#include "obs/rolling.hpp"

#include <algorithm>
#include <bit>

#include "obs/trace.hpp"

namespace parapll::obs {

namespace {

// Lower/upper value bounds of bucket `b` (see HistogramSnapshot: bucket 0
// holds 0, bucket b >= 1 holds [2^(b-1), 2^b)).
std::uint64_t BucketLo(std::size_t b) {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}
std::uint64_t BucketHi(std::size_t b) {
  return b == 0 ? 0 : (std::uint64_t{1} << (b - 1)) * 2 - 1;
}

// cur minus prev. Cumulative min/max cannot be attributed to one
// interval, so the delta's bounds are re-derived from its own non-empty
// buckets (bucket resolution) — that keeps Quantile's [min, max] clamp
// meaningful on windowed views. A Reset() between snapshots (cur behind
// prev) restarts the delta at cur.
HistogramSnapshot DeltaOf(const HistogramSnapshot& prev,
                          const HistogramSnapshot& cur) {
  HistogramSnapshot delta;
  if (cur.count < prev.count) {
    delta = cur;
    return delta;
  }
  delta.count = cur.count - prev.count;
  delta.sum = cur.sum >= prev.sum ? cur.sum - prev.sum : 0;
  bool any = false;
  for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    const std::uint64_t d =
        cur.buckets[b] >= prev.buckets[b] ? cur.buckets[b] - prev.buckets[b]
                                          : 0;
    delta.buckets[b] = d;
    if (d != 0) {
      if (!any) {
        delta.min = std::max(BucketLo(b), cur.min);
        any = true;
      }
      delta.max = std::min(BucketHi(b), cur.max);
    }
  }
  return delta;
}

void MergeInto(HistogramSnapshot& into, const HistogramSnapshot& delta) {
  if (delta.count == 0) {
    return;
  }
  if (into.count == 0) {
    into.min = delta.min;
    into.max = delta.max;
  } else {
    into.min = std::min(into.min, delta.min);
    into.max = std::max(into.max, delta.max);
  }
  into.count += delta.count;
  into.sum += delta.sum;
  for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    into.buckets[b] += delta.buckets[b];
  }
}

}  // namespace

RollingWindow::RollingWindow(RollingWindowOptions options)
    : options_(options) {
  options_.interval_ns = std::max<std::uint64_t>(options_.interval_ns, 1);
  options_.intervals = std::max<std::size_t>(options_.intervals, 1);
}

void RollingWindow::TrackHistogram(std::string_view name) {
  Histogram& histogram = Registry::Global().GetHistogram(name);
  util::MutexLock lock(mutex_);
  histograms_.push_back(TrackedHistogram{std::string(name), &histogram,
                                         histogram.Snapshot(), {}});
}

void RollingWindow::TrackCounter(std::string_view name) {
  Counter& counter = Registry::Global().GetCounter(name);
  util::MutexLock lock(mutex_);
  counters_.push_back(
      TrackedCounter{std::string(name), &counter, counter.Value(), {}});
}

void RollingWindow::Advance(std::uint64_t now_ns) {
  util::MutexLock lock(mutex_);
  AdvanceLocked(now_ns);
}

void RollingWindow::AdvanceLocked(std::uint64_t now_ns) {
  if (open_start_ns_ == 0) {
    // First call anchors the window; baselines were captured at Track*().
    open_start_ns_ = now_ns;
    return;
  }
  if (now_ns < open_start_ns_ + options_.interval_ns) {
    return;
  }
  const std::uint64_t elapsed = now_ns - open_start_ns_;
  const std::uint64_t closed = elapsed / options_.interval_ns;
  // One live snapshot closes all `closed` intervals: idle slots are
  // empty, and the whole delta lands in the most recent closed slot (the
  // sub-interval timing is unknowable after the fact; window totals stay
  // exact). Slots beyond the ring capacity would fall straight out, so
  // only min(closed - 1, capacity) empties are materialized.
  const auto empties = static_cast<std::size_t>(std::min<std::uint64_t>(
      closed - 1, static_cast<std::uint64_t>(options_.intervals)));
  for (TrackedHistogram& tracked : histograms_) {
    const HistogramSnapshot cur = tracked.histogram->Snapshot();
    for (std::size_t i = 0; i < empties; ++i) {
      tracked.deltas.emplace_back();
    }
    tracked.deltas.push_back(DeltaOf(tracked.baseline, cur));
    while (tracked.deltas.size() > options_.intervals) {
      tracked.deltas.pop_front();
    }
    tracked.baseline = cur;
  }
  for (TrackedCounter& tracked : counters_) {
    const std::uint64_t cur = tracked.counter->Value();
    for (std::size_t i = 0; i < empties; ++i) {
      tracked.deltas.push_back(0);
    }
    tracked.deltas.push_back(cur >= tracked.baseline ? cur - tracked.baseline
                                                     : cur);
    while (tracked.deltas.size() > options_.intervals) {
      tracked.deltas.pop_front();
    }
    tracked.baseline = cur;
  }
  open_start_ns_ += closed * options_.interval_ns;
}

HistogramSnapshot RollingWindow::WindowedHistogram(
    std::string_view name) const {
  util::MutexLock lock(mutex_);
  HistogramSnapshot merged;
  for (const TrackedHistogram& tracked : histograms_) {
    if (tracked.name != name) {
      continue;
    }
    for (const HistogramSnapshot& delta : tracked.deltas) {
      MergeInto(merged, delta);
    }
    // The open interval contributes live: current cumulative minus the
    // last closed baseline.
    MergeInto(merged, DeltaOf(tracked.baseline, tracked.histogram->Snapshot()));
    break;
  }
  return merged;
}

std::uint64_t RollingWindow::WindowedCounter(std::string_view name) const {
  util::MutexLock lock(mutex_);
  for (const TrackedCounter& tracked : counters_) {
    if (tracked.name != name) {
      continue;
    }
    std::uint64_t total = 0;
    for (const std::uint64_t delta : tracked.deltas) {
      total += delta;
    }
    const std::uint64_t cur = tracked.counter->Value();
    total += cur >= tracked.baseline ? cur - tracked.baseline : cur;
    return total;
  }
  return 0;
}

double RollingWindow::WindowedSeconds(std::uint64_t now_ns) const {
  util::MutexLock lock(mutex_);
  if (open_start_ns_ == 0) {
    return 0.0;
  }
  std::size_t slots = 0;
  for (const TrackedHistogram& tracked : histograms_) {
    slots = std::max(slots, tracked.deltas.size());
  }
  for (const TrackedCounter& tracked : counters_) {
    slots = std::max(slots, tracked.deltas.size());
  }
  const std::uint64_t open_ns =
      now_ns > open_start_ns_
          ? std::min(now_ns - open_start_ns_, options_.interval_ns)
          : 0;
  return (static_cast<double>(slots) *
              static_cast<double>(options_.interval_ns) +
          static_cast<double>(open_ns)) /
         1e9;
}

double RollingWindow::RatePerSecond(std::string_view name,
                                    std::uint64_t now_ns) const {
  const double seconds = WindowedSeconds(now_ns);
  if (seconds <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(WindowedCounter(name)) / seconds;
}

ServeSloGauges::ServeSloGauges(ServeSloOptions options)
    : options_(options), window_(options.window) {
  window_.TrackHistogram("server.request_latency_ns");
  window_.TrackCounter("server.requests");
  window_.TrackCounter("server.shed");
  probe_.emplace("server.window.p50_ms",
                 [this] { return Collect(TraceNowNs()).p50_ms; });
}

WindowedServeStats ServeSloGauges::Collect(std::uint64_t now_ns) {
  window_.Advance(now_ns);
  WindowedServeStats stats;
  const HistogramSnapshot latency =
      window_.WindowedHistogram("server.request_latency_ns");
  stats.p50_ms = latency.Quantile(0.50) / 1e6;
  stats.p99_ms = latency.Quantile(0.99) / 1e6;
  const std::uint64_t requests = window_.WindowedCounter("server.requests");
  const std::uint64_t shed = window_.WindowedCounter("server.shed");
  stats.qps = window_.RatePerSecond("server.requests", now_ns);
  stats.shed_rate = requests == 0 ? 0.0
                                  : static_cast<double>(shed) /
                                        static_cast<double>(requests);
  const auto objective_ns =
      static_cast<std::uint64_t>(std::max(options_.slo_ms, 0.0) * 1e6);
  stats.slo_violation_rate = latency.FractionAbove(objective_ns);
  const double error_budget = std::max(1.0 - options_.slo_target, 1e-9);
  stats.slo_burn_rate = stats.slo_violation_rate / error_budget;

  Registry& registry = Registry::Global();
  registry.GetGauge("server.window.p50_ms").Set(stats.p50_ms);
  registry.GetGauge("server.window.p99_ms").Set(stats.p99_ms);
  registry.GetGauge("server.window.qps").Set(stats.qps);
  registry.GetGauge("server.window.shed_rate").Set(stats.shed_rate);
  registry.GetGauge("server.window.slo_violation_rate")
      .Set(stats.slo_violation_rate);
  registry.GetGauge("server.window.slo_burn_rate").Set(stats.slo_burn_rate);
  return stats;
}

}  // namespace parapll::obs
