// Prometheus text exposition + a minimal single-threaded HTTP endpoint.
//
//   GET /metrics        — Prometheus text format (version 0.0.4):
//                         counters and gauges as-is, log2 histograms
//                         translated to cumulative `_bucket{le=...}`
//                         series plus `_sum`/`_count`, interpolated
//                         `_p50/_p90/_p99` gauges, and OpenMetrics-style
//                         exemplars (`# {request_id="..."} value`) on
//                         buckets that carry one.
//   GET /healthz        — JSON health document: status, uptime,
//                         telemetry sample count, process version, and
//                         the served index's BuildManifest identity
//                         (fingerprint, mode, vertex count) published via
//                         SetProcessHealthInfo, so operators can tell
//                         *which* index a process is serving.
//   GET /debug/requests — the serving daemon's wide-event request-log
//                         ring as JSON (newest last), when a daemon in
//                         this process registered a provider via
//                         SetDebugRequestsProvider; 404 otherwise.
//   GET /debug/profile  — on-demand CPU capture: ?seconds=N (default 5,
//                         max 60) runs the obs::Profiler and returns
//                         collapsed stacks (text) or, with &format=json,
//                         the Chrome trace merged with the span timeline.
//                         409 while a capture is already running; the
//                         server thread blocks for the capture window (it
//                         is a scrape target, not a web server).
//
// The server owns one background thread that accepts and answers one
// connection at a time — a scrape target, not a web server. Probes
// (obs/telemetry.hpp) are collected before every /metrics render so
// registered live state (label-store bytes, build progress) is fresh.
//
// Metric names are sanitized for Prometheus ([a-zA-Z0-9_:]) and prefixed
// "parapll_": "query.batch.latency_ns" -> "parapll_query_batch_latency_ns".
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>

#include "obs/metrics.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace parapll::obs {

class TelemetrySampler;

// Process version reported by /healthz; tracks the repo's PR trajectory.
inline constexpr const char* kParaPllVersion = "0.8.0";

// What /healthz reports about the index this process serves. The obs
// layer stays independent of pll::BuildManifest: whoever loads or builds
// an index copies the identifying fields in via SetProcessHealthInfo.
struct HealthInfo {
  std::uint64_t index_fingerprint = 0;  // graph fingerprint, 0 = no index
  std::uint32_t index_format_version = 0;
  std::string index_mode;  // "serial" | "parallel" | ... ; empty = none
  std::uint64_t num_vertices = 0;
  std::uint64_t roots_completed = 0;
};

// Process-wide health identity, read by every StatsServer instance.
// Thread-safe; call again whenever the served index changes.
void SetProcessHealthInfo(const HealthInfo& info);
[[nodiscard]] HealthInfo GetProcessHealthInfo();

// Saturation view of the serving daemon for /healthz, mirroring the INFO
// frame response. Like HealthInfo, the obs layer stays independent of
// serve/: the daemon registers a provider on Start() and clears it on
// Stop(); valid == false renders no "serve" section.
struct ServeStatus {
  bool valid = false;
  std::uint64_t queue_depth_pairs = 0;  // pairs admitted, awaiting drain
  std::uint64_t shed = 0;               // cumulative SHED responses
  double snapshot_age_seconds = 0.0;    // age of the served index flip
};

// Both providers must be thread-safe: they run on the StatsServer's
// worker thread. An empty std::function clears the hook.
void SetServeStatusProvider(std::function<ServeStatus()> provider);

// /debug/requests body provider — the serving daemon's wide-event
// request-log ring rendered as JSON. Unset => the endpoint answers 404.
void SetDebugRequestsProvider(std::function<std::string()> provider);

// "query.batch.latency_ns" -> "parapll_query_batch_latency_ns".
std::string PrometheusMetricName(std::string_view name);

// Renders a registry snapshot as Prometheus text exposition.
void RenderPrometheusText(const RegistrySnapshot& snapshot, std::ostream& out);
[[nodiscard]] std::string RenderPrometheusText(
    const RegistrySnapshot& snapshot);

struct StatsServerOptions {
  // 0 binds an ephemeral port; read the result back with Port().
  std::uint16_t port = 0;
  // Optional: /healthz reports this sampler's sample count.
  const TelemetrySampler* sampler = nullptr;
};

// Minimal HTTP/1.1 endpoint bound to 127.0.0.1. Start() binds and spawns
// the accept loop; Stop() (or destruction) shuts it down.
class StatsServer {
 public:
  explicit StatsServer(StatsServerOptions options = {});
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  // Throws std::runtime_error when the socket cannot be created or bound.
  void Start();
  void Stop();  // idempotent

  [[nodiscard]] bool Running() const {
    // acquire: pairs with the release store in Start() so a caller that
    // observes true also sees the bound port and start timestamp.
    return running_.load(std::memory_order_acquire);
  }
  // Bound port; valid after Start() (resolves port 0 to the real one).
  [[nodiscard]] std::uint16_t Port() const {
    util::MutexLock lock(mutex_);
    return port_;
  }

 private:
  // The accept loop; takes the listening socket by value so it never
  // touches the guarded listen_fd_ member from the worker thread.
  void Serve(int listen_fd);
  void Handle(int client_fd);
  // GET /debug/profile: runs an on-demand obs::Profiler capture. Sleeps
  // in short slices and aborts early when the server is stopped so
  // Stop() never waits out a long capture window.
  void HandleDebugProfile(const std::string& query, std::string& status,
                          std::string& content_type, std::string& body);

  StatsServerOptions options_;  // written by the ctor only, then read-only
  // Lifecycle state: Start()/Stop()/Port() all serialize on mutex_, so a
  // concurrent double-Stop can never close the same fd or join the same
  // thread twice.
  mutable util::Mutex mutex_;
  int listen_fd_ GUARDED_BY(mutex_) = -1;
  std::uint16_t port_ GUARDED_BY(mutex_) = 0;
  // Written in Start() before the worker spawns, then read-only (Handle
  // reads it from the worker thread without the lock).
  std::uint64_t start_ns_ = 0;
  std::atomic<bool> running_{false};
  std::thread worker_ GUARDED_BY(mutex_);
};

}  // namespace parapll::obs
