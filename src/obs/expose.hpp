// Prometheus text exposition + a minimal single-threaded HTTP endpoint.
//
//   GET /metrics  — Prometheus text format (version 0.0.4): counters and
//                   gauges as-is, log2 histograms translated to cumulative
//                   `_bucket{le=...}` series plus `_sum`/`_count`, and
//                   interpolated `_p50/_p90/_p99` gauges per histogram.
//   GET /healthz  — "ok" plus uptime and sample count, for humans and
//                   load-balancer checks.
//
// The server owns one background thread that accepts and answers one
// connection at a time — a scrape target, not a web server. Probes
// (obs/telemetry.hpp) are collected before every /metrics render so
// registered live state (label-store bytes, build progress) is fresh.
//
// Metric names are sanitized for Prometheus ([a-zA-Z0-9_:]) and prefixed
// "parapll_": "query.batch.latency_ns" -> "parapll_query_batch_latency_ns".
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>

#include "obs/metrics.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace parapll::obs {

class TelemetrySampler;

// "query.batch.latency_ns" -> "parapll_query_batch_latency_ns".
std::string PrometheusMetricName(std::string_view name);

// Renders a registry snapshot as Prometheus text exposition.
void RenderPrometheusText(const RegistrySnapshot& snapshot, std::ostream& out);
[[nodiscard]] std::string RenderPrometheusText(
    const RegistrySnapshot& snapshot);

struct StatsServerOptions {
  // 0 binds an ephemeral port; read the result back with Port().
  std::uint16_t port = 0;
  // Optional: /healthz reports this sampler's sample count.
  const TelemetrySampler* sampler = nullptr;
};

// Minimal HTTP/1.1 endpoint bound to 127.0.0.1. Start() binds and spawns
// the accept loop; Stop() (or destruction) shuts it down.
class StatsServer {
 public:
  explicit StatsServer(StatsServerOptions options = {});
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  // Throws std::runtime_error when the socket cannot be created or bound.
  void Start();
  void Stop();  // idempotent

  [[nodiscard]] bool Running() const {
    // acquire: pairs with the release store in Start() so a caller that
    // observes true also sees the bound port and start timestamp.
    return running_.load(std::memory_order_acquire);
  }
  // Bound port; valid after Start() (resolves port 0 to the real one).
  [[nodiscard]] std::uint16_t Port() const {
    util::MutexLock lock(mutex_);
    return port_;
  }

 private:
  // The accept loop; takes the listening socket by value so it never
  // touches the guarded listen_fd_ member from the worker thread.
  void Serve(int listen_fd);
  void Handle(int client_fd);

  StatsServerOptions options_;  // written by the ctor only, then read-only
  // Lifecycle state: Start()/Stop()/Port() all serialize on mutex_, so a
  // concurrent double-Stop can never close the same fd or join the same
  // thread twice.
  mutable util::Mutex mutex_;
  int listen_fd_ GUARDED_BY(mutex_) = -1;
  std::uint16_t port_ GUARDED_BY(mutex_) = 0;
  // Written in Start() before the worker spawns, then read-only (Handle
  // reads it from the worker thread without the lock).
  std::uint64_t start_ns_ = 0;
  std::atomic<bool> running_{false};
  std::thread worker_ GUARDED_BY(mutex_);
};

}  // namespace parapll::obs
