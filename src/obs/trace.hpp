// Low-overhead trace spans with Chrome-trace ("chrome://tracing" /
// Perfetto) JSON export.
//
//   PARAPLL_SPAN("build_parallel");                   // scope = span
//   PARAPLL_SPAN("pruned_dijkstra", "root", root);    // with one arg
//
// Each span records a begin timestamp on construction and commits one
// complete ("ph":"X") event into the calling thread's buffer on scope
// exit. Buffers are appended to only by their owner thread and protected
// by a per-buffer mutex so exporting/clearing from another thread is
// safe; the mutex is uncontended on the hot path.
//
// Runtime toggle: spans are no-ops unless SetTracingEnabled(true) was
// called (one relaxed atomic load per span when off). Compile-time
// opt-out: -DPARAPLL_NO_OBS compiles PARAPLL_SPAN away entirely.
//
// Span names and arg names must be string literals (or otherwise outlive
// the TraceSink) — buffers store the pointers, not copies.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace parapll::util {
class JsonWriter;
}  // namespace parapll::util

namespace parapll::obs {

// Global runtime switch for span collection. Off by default.
bool TracingEnabled();
void SetTracingEnabled(bool enabled);

// Nanoseconds since a process-wide steady-clock anchor. Monotonic.
std::uint64_t TraceNowNs();

struct TraceEvent {
  const char* name = nullptr;      // static string
  const char* arg_name = nullptr;  // static string; nullptr = no arg
  std::uint64_t arg = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

// Owns every thread's event buffer.
class TraceSink {
 public:
  static TraceSink& Global();

  // Appends to the calling thread's buffer (registering it on first use).
  // Once a buffer holds MaxEventsPerThread() events, further records on
  // that thread are counted as dropped instead of growing the buffer, so
  // a long traced run is bounded in memory.
  void Record(const TraceEvent& event);

  // Total buffered events across all threads.
  [[nodiscard]] std::size_t EventCount() const;

  // Per-thread buffer cap; 0 means unbounded. Applies to future Record()
  // calls — it does not shrink buffers that already exceed the new cap.
  void SetMaxEventsPerThread(std::size_t cap);
  [[nodiscard]] std::size_t MaxEventsPerThread() const;
  // Default cap: 1M events per thread (~40 MB) — see kDefaultMaxEvents.
  static constexpr std::size_t kDefaultMaxEvents = 1u << 20;

  // Events rejected by the cap since the last Clear(). Also mirrored into
  // the metrics registry as the "trace.dropped_events" counter.
  [[nodiscard]] std::uint64_t DroppedEvents() const;

  // Drops all buffered events (thread buffers stay registered) and zeroes
  // DroppedEvents().
  void Clear();

  // Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  // Timestamps are microseconds; each event carries the recording
  // thread's stable small tid. Loadable by chrome://tracing and Perfetto.
  void WriteChromeJson(std::ostream& out) const;
  [[nodiscard]] std::string ToChromeJson() const;
  // Convenience file form; throws std::runtime_error on open failure.
  void WriteChromeJsonFile(const std::string& path) const;

  // Emits each buffered event as one JSON object via `w`, which must be
  // positioned inside an open array. Lets other exporters (the profiler's
  // merged Chrome trace) splice the span timeline into their own
  // "traceEvents" array; JsonWriter's comma bookkeeping makes the events
  // compose with whatever the caller writes around them.
  void AppendChromeEvents(util::JsonWriter& w) const;

 private:
  TraceSink() = default;

  struct ThreadBuffer;
  ThreadBuffer& LocalBuffer();

  struct Impl;
  Impl* impl();              // lazily built, leaked
  const Impl* impl() const;  // same instance
};

// RAII span; prefer the PARAPLL_SPAN macro.
class Span {
 public:
  explicit Span(const char* name) : Span(name, nullptr, 0) {}
  Span(const char* name, const char* arg_name, std::uint64_t arg) {
    if (TracingEnabled()) {
      event_.name = name;
      event_.arg_name = arg_name;
      event_.arg = arg;
      event_.start_ns = TraceNowNs();
    }
  }
  ~Span() {
    if (event_.name != nullptr) {
      event_.dur_ns = TraceNowNs() - event_.start_ns;
      Commit();
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void Commit();

  TraceEvent event_;  // name == nullptr -> span inactive
};

}  // namespace parapll::obs

#define PARAPLL_OBS_CONCAT_IMPL(a, b) a##b
#define PARAPLL_OBS_CONCAT(a, b) PARAPLL_OBS_CONCAT_IMPL(a, b)

#ifndef PARAPLL_NO_OBS
// Opens a span covering the rest of the enclosing scope.
//   PARAPLL_SPAN(name)                — plain span
//   PARAPLL_SPAN(name, arg_name, arg) — span with one integer arg
#define PARAPLL_SPAN(...) \
  ::parapll::obs::Span PARAPLL_OBS_CONCAT(parapll_span_, __LINE__)(__VA_ARGS__)
#else
#define PARAPLL_SPAN(...) ((void)0)
#endif
