#include "obs/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <unistd.h>
#define PARAPLL_HAVE_POSIX_SIGNALS 1
#endif

#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace parapll::obs {

namespace {

// Kernel ticks per second for /proc/self/stat utime/stime.
double ClockTicksPerSecond() {
#if defined(_SC_CLK_TCK)
  static const double ticks = [] {
    const long hz = ::sysconf(_SC_CLK_TCK);
    return hz > 0 ? static_cast<double>(hz) : 100.0;
  }();
  return ticks;
#else
  return 100.0;
#endif
}

// Parses "<key>:   <value> kB" style lines of /proc/self/status.
bool StatusLineValue(const std::string& line, const char* key,
                     std::uint64_t* out) {
  const std::size_t key_len = std::strlen(key);
  if (line.compare(0, key_len, key) != 0) {
    return false;
  }
  std::istringstream rest(line.substr(key_len));
  std::uint64_t value = 0;
  if (!(rest >> value)) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace

ProcessStats ReadProcessStats() {
  ProcessStats stats;
  std::ifstream status("/proc/self/status");
  if (!status) {
    return stats;
  }
  std::string line;
  std::uint64_t kb = 0;
  while (std::getline(status, line)) {
    if (StatusLineValue(line, "VmRSS:", &kb)) {
      stats.rss_bytes = kb * 1024;
    } else if (StatusLineValue(line, "VmHWM:", &kb)) {
      stats.peak_rss_bytes = kb * 1024;
    } else if (StatusLineValue(line, "Threads:", &kb)) {
      stats.threads = kb;
    }
  }

  std::ifstream stat("/proc/self/stat");
  if (stat) {
    std::string content;
    std::getline(stat, content);
    // Field 2 (comm) may contain spaces; everything after the closing
    // paren is space-separated. utime and stime are fields 14 and 15.
    const std::size_t paren = content.rfind(')');
    if (paren != std::string::npos) {
      std::istringstream rest(content.substr(paren + 1));
      std::string field;
      std::uint64_t utime = 0;
      std::uint64_t stime = 0;
      // After comm: field 3 is "state"; utime/stime are the 12th and 13th
      // tokens from there.
      bool ok = true;
      for (int i = 0; i < 11 && ok; ++i) {
        ok = static_cast<bool>(rest >> field);
      }
      if (ok && (rest >> utime >> stime)) {
        stats.user_cpu_seconds =
            static_cast<double>(utime) / ClockTicksPerSecond();
        stats.sys_cpu_seconds =
            static_cast<double>(stime) / ClockTicksPerSecond();
      }
    }
  }
  stats.valid = true;
  return stats;
}

ProbeRegistry& ProbeRegistry::Global() {
  static ProbeRegistry* registry = new ProbeRegistry();  // leaked
  return *registry;
}

std::uint64_t ProbeRegistry::Add(std::string gauge_name, Probe probe) {
  util::MutexLock lock(mutex_);
  const std::uint64_t id = next_id_++;
  entries_.push_back(Entry{id, std::move(gauge_name), std::move(probe)});
  return id;
}

void ProbeRegistry::Remove(std::uint64_t id) {
  util::MutexLock lock(mutex_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const Entry& e) { return e.id == id; }),
                 entries_.end());
}

void ProbeRegistry::Collect() {
  // Copy under the lock, run outside it: probes may be slow and must not
  // deadlock against concurrent Add/Remove from the probed code.
  std::vector<Entry> entries;
  {
    util::MutexLock lock(mutex_);
    entries = entries_;
  }
  for (const Entry& entry : entries) {
    Registry::Global().GetGauge(entry.gauge_name).Set(entry.probe());
  }
}

std::size_t ProbeRegistry::Size() const {
  util::MutexLock lock(mutex_);
  return entries_.size();
}

TelemetrySampler::TelemetrySampler(TelemetryOptions options)
    : options_(options) {
  options_.period = std::max(options_.period, std::chrono::milliseconds(1));
  options_.ring_capacity = std::max<std::size_t>(options_.ring_capacity, 1);
}

TelemetrySampler::~TelemetrySampler() { Stop(); }

void TelemetrySampler::Start() {
  util::MutexLock lock(mutex_);
  if (running_) {
    return;
  }
  if (!options_.jsonl_path.empty()) {
    out_ = std::make_unique<std::ofstream>(options_.jsonl_path);
    if (!*out_) {
      out_.reset();
      throw std::runtime_error("cannot open " + options_.jsonl_path);
    }
  }
  running_ = true;
  stop_requested_ = false;
  worker_ = std::thread([this] { Loop(); });
}

void TelemetrySampler::Stop() {
  std::thread worker;
  {
    util::MutexLock lock(mutex_);
    if (!running_) {
      return;
    }
    // Flip running_ and take the handle under the lock so a concurrent
    // second Stop() returns above instead of joining the same thread
    // twice (which is undefined behavior).
    running_ = false;
    stop_requested_ = true;
    worker = std::move(worker_);
  }
  cv_.NotifyAll();
  worker.join();
  SampleNow();  // end-state sample: short runs still record their totals
  util::MutexLock lock(mutex_);
  if (out_ != nullptr) {
    out_->flush();
    out_.reset();
  }
}

bool TelemetrySampler::Running() const {
  util::MutexLock lock(mutex_);
  return running_;
}

TelemetrySample TelemetrySampler::CollectSample() {
  ProbeRegistry::Global().Collect();
  TelemetrySample sample;
  sample.mono_ns = TraceNowNs();
  sample.process = ReadProcessStats();
  sample.registry = Registry::Global().Snapshot();
  return sample;
}

TelemetrySample TelemetrySampler::SampleNow() {
  TelemetrySample sample = CollectSample();
  util::MutexLock lock(mutex_);
  sample.seq = seq_++;
  ring_.push_back(sample);
  while (ring_.size() > options_.ring_capacity) {
    ring_.pop_front();
  }
  if (out_ != nullptr) {
    WriteJsonLine(sample, *out_);
    *out_ << '\n';
    out_->flush();
  }
  return sample;
}

std::vector<TelemetrySample> TelemetrySampler::Samples() const {
  util::MutexLock lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t TelemetrySampler::TotalSamples() const {
  util::MutexLock lock(mutex_);
  return seq_;
}

void TelemetrySampler::Loop() {
  for (;;) {
    {
      util::MutexLock lock(mutex_);
      const auto deadline = std::chrono::steady_clock::now() + options_.period;
      while (!stop_requested_) {
        if (cv_.WaitUntil(mutex_, deadline) == std::cv_status::timeout) {
          break;
        }
      }
      if (stop_requested_) {
        return;  // Stop() takes the final sample after the join
      }
    }
    SampleNow();
  }
}

void TelemetrySampler::WriteJsonLine(const TelemetrySample& sample,
                                     std::ostream& out) {
  util::JsonWriter w(out);
  w.BeginObject();
  w.Key("seq").Value(sample.seq);
  w.Key("mono_ns").Value(sample.mono_ns);
  w.Key("process").BeginObject();
  w.Key("valid").Value(sample.process.valid);
  w.Key("rss_bytes").Value(sample.process.rss_bytes);
  w.Key("peak_rss_bytes").Value(sample.process.peak_rss_bytes);
  w.Key("user_cpu_seconds").Value(sample.process.user_cpu_seconds);
  w.Key("sys_cpu_seconds").Value(sample.process.sys_cpu_seconds);
  w.Key("threads").Value(sample.process.threads);
  w.EndObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : sample.registry.counters) {
    w.Key(name).Value(value);
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : sample.registry.gauges) {
    w.Key(name).Value(value);
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, snap] : sample.registry.histograms) {
    w.Key(name).BeginObject();
    w.Key("count").Value(snap.count);
    w.Key("sum").Value(snap.sum);
    w.Key("mean").Value(snap.Mean());
    w.Key("p50").Value(snap.Quantile(0.50));
    w.Key("p90").Value(snap.Quantile(0.90));
    w.Key("p99").Value(snap.Quantile(0.99));
    w.Key("max").Value(snap.max);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

// --- flush-on-signal -----------------------------------------------------

namespace {

struct SignalFlushState {
  util::Mutex mutex;
  std::uint64_t next_id GUARDED_BY(mutex) = 1;
  std::vector<std::pair<std::uint64_t, std::function<void()>>> callbacks
      GUARDED_BY(mutex);
  bool installed GUARDED_BY(mutex) = false;
  // Written once by InstallOnce() (under mutex) before the watcher thread
  // and signal handler exist; both then only read them.
  int pipe_fds[2] = {-1, -1};
};

SignalFlushState& FlushState() {
  static SignalFlushState* state = new SignalFlushState();  // leaked
  return *state;
}

void RunFlushCallbacks() {
  // Copy so a callback that (indirectly) unregisters does not deadlock.
  std::vector<std::function<void()>> callbacks;
  {
    util::MutexLock lock(FlushState().mutex);
    for (auto& [id, fn] : FlushState().callbacks) {
      callbacks.push_back(fn);
    }
  }
  for (auto& fn : callbacks) {
    try {
      fn();
    } catch (...) {
      // Flushing is best-effort on the way out.
    }
  }
}

#ifdef PARAPLL_HAVE_POSIX_SIGNALS

// Async-signal-safe: only write()s the signal number to the self-pipe.
void SignalHandler(int signo) {
  const unsigned char byte = static_cast<unsigned char>(signo);
  [[maybe_unused]] const ssize_t n =
      ::write(FlushState().pipe_fds[1], &byte, 1);
}

void InstallOnce() REQUIRES(FlushState().mutex) {
  SignalFlushState& state = FlushState();
  if (state.installed) {
    return;
  }
  if (::pipe(state.pipe_fds) != 0) {
    return;  // no pipe, no flush-on-signal; normal exits still flush
  }
  std::thread([&state] {
    unsigned char byte = 0;
    for (;;) {
      const ssize_t n = ::read(state.pipe_fds[0], &byte, 1);
      if (n == 1) {
        break;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n <= 0) {
        return;  // pipe broken; give up quietly
      }
    }
    RunFlushCallbacks();
    std::_Exit(128 + static_cast<int>(byte));
  }).detach();
  struct sigaction action {};
  action.sa_handler = SignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  state.installed = true;
}

#else

void InstallOnce() REQUIRES(FlushState().mutex) {}

#endif  // PARAPLL_HAVE_POSIX_SIGNALS

}  // namespace

std::uint64_t AddSignalFlush(std::function<void()> flush) {
  SignalFlushState& state = FlushState();
  util::MutexLock lock(state.mutex);
  InstallOnce();
  const std::uint64_t id = state.next_id++;
  state.callbacks.emplace_back(id, std::move(flush));
  return id;
}

void RemoveSignalFlush(std::uint64_t id) {
  SignalFlushState& state = FlushState();
  util::MutexLock lock(state.mutex);
  state.callbacks.erase(
      std::remove_if(state.callbacks.begin(), state.callbacks.end(),
                     [id](const auto& entry) { return entry.first == id; }),
      state.callbacks.end());
}

namespace internal {
void RunSignalFlushCallbacksForTest() { RunFlushCallbacks(); }
}  // namespace internal

}  // namespace parapll::obs
