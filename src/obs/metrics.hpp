// Process-wide metrics registry: named counters, gauges, and log2-bucket
// histograms with sharded (per-thread-slot) atomic updates and
// snapshot/merge on read.
//
// Design goals, in order:
//   1. Near-zero cost when disabled: every instrumentation site is gated
//      on MetricsEnabled(), a single relaxed atomic load.
//   2. Cheap when enabled: hot-path updates are one relaxed fetch_add on
//      a cache-line-padded shard chosen by a per-thread index, so worker
//      threads never contend on the same line.
//   3. Exact counts: shards are merged on read; concurrent Add()s from N
//      threads always sum exactly (see tests/obs_metrics_test.cpp).
//
// Handles returned by Registry::Get*() are valid for the life of the
// process — Reset() zeroes values but never invalidates handles — so
// instrumentation sites cache them in function-local statics:
//
//   static obs::Counter& hits =
//       obs::Registry::Global().GetCounter("pll.prune_hits");
//   if (obs::MetricsEnabled()) hits.Add(1);
//
// Compile-time opt-out: building with -DPARAPLL_NO_OBS turns the
// PARAPLL_SPAN macro (trace.hpp) into a no-op; metric updates are already
// behind the runtime flag and cost one predictable branch.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace parapll::obs {

// Global runtime switch for metric collection. Off by default.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

namespace internal {
// Stable small index for the calling thread, used to pick a shard.
std::size_t ThreadSlot();
}  // namespace internal

// Monotonically increasing sum, sharded across cache-line-padded atomics.
class Counter {
 public:
  static constexpr std::size_t kShards = 64;

  void Add(std::uint64_t n = 1) {
    // relaxed: each shard is an independent partial sum; Value() merges
    // them and exactness is only promised once writers have quiesced.
    shards_[internal::ThreadSlot() & (kShards - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  // Merged value; exact once concurrent writers have quiesced.
  [[nodiscard]] std::uint64_t Value() const;

  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_{};
};

// Last-written floating-point value (plus Add for accumulation).
class Gauge {
 public:
  // relaxed (all methods): a gauge is a single independent value with
  // last-writer-wins semantics; no other data is published through it.
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v);
  [[nodiscard]] double Value() const {
    // relaxed: see the class comment above.
    return value_.load(std::memory_order_relaxed);
  }
  // relaxed: see the class comment above.
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Last sample that landed in one histogram bucket together with the
// request context that produced it — an OpenMetrics-style exemplar
// answering "which request put something in this latency bucket?".
struct HistogramExemplar {
  bool valid = false;
  std::uint64_t value = 0;
  std::uint64_t request_id = 0;  // obs::RequestContext id, 0 = untagged
};

// Read-only merged view of a Histogram.
struct HistogramSnapshot {
  // Bucket b = 0 holds value 0; bucket b >= 1 holds values in
  // [2^(b-1), 2^b).
  static constexpr std::size_t kBuckets = 65;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // 0 when empty
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::array<HistogramExemplar, kBuckets> exemplars{};

  [[nodiscard]] double Mean() const;
  // Approximate quantile (q in [0, 1]): walks the cumulative bucket
  // counts and interpolates linearly inside the landing bucket, clamped
  // to the exact recorded [min, max].
  [[nodiscard]] double Quantile(double q) const;
  // Fraction of recorded samples strictly greater than `threshold`,
  // interpolated inside the landing bucket — the SLO-violation rate for
  // a latency objective of `threshold`. 0 when empty.
  [[nodiscard]] double FractionAbove(std::uint64_t threshold) const;
};

// Histogram of non-negative integer samples (latencies in ns, sizes in
// entries/bytes) with power-of-two buckets. Count and sum are sharded;
// bucket increments are relaxed fetch_adds on shared slots (two threads
// only collide when recording values in the same power-of-two range).
class Histogram {
 public:
  void Record(std::uint64_t value);

  // Record() plus a best-effort exemplar: remembers (value, request_id)
  // for the landing bucket so the exposition can point at the request
  // that produced a sample in that latency range. Lossy by design — a
  // writer that loses the seqlock race skips the exemplar rather than
  // spin, so the cost over Record() is one CAS on the bucket's slot.
  void RecordWithExemplar(std::uint64_t value, std::uint64_t request_id);

  [[nodiscard]] HistogramSnapshot Snapshot() const;

  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  // Seqlock slot: version is even when stable; a writer CASes it odd,
  // stores the payload, then bumps it back to even. Readers retry/skip on
  // odd or changed versions, so a torn (value, request_id) pair is never
  // observed.
  struct ExemplarSlot {
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint64_t> request_id{0};
  };
  static constexpr std::size_t kShards = 64;

  std::array<Shard, kShards> shards_{};
  std::array<std::atomic<std::uint64_t>, HistogramSnapshot::kBuckets>
      buckets_{};
  std::array<ExemplarSlot, HistogramSnapshot::kBuckets> exemplars_{};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

// Point-in-time merged view of every registered metric. This is the
// input of both exporters: the Prometheus renderer (obs/expose.hpp) and
// the telemetry sampler's JSONL stream (obs/telemetry.hpp).
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, HistogramSnapshot, std::less<>> histograms;
};

// Name -> metric map. Get*() registers on first use and returns a handle
// that stays valid forever; lookups take a mutex, so hot paths must cache
// the returned reference (function-local static), not re-look-up per
// event.
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  // Zeroes every registered metric. Handles stay valid.
  void Reset();

  // Merged point-in-time values of every registered metric. Like ToJson,
  // values are exact once concurrent writers have quiesced.
  [[nodiscard]] RegistrySnapshot Snapshot() const;

  // Flat JSON dump:
  //   {"counters":{name:value,...},
  //    "gauges":{name:value,...},
  //    "histograms":{name:{count,sum,mean,min,max,p50,p90,p99,
  //                        buckets:[[lo,count],...]},...}}
  // Values are merged snapshots; call after workers quiesce for exact
  // totals. See EXPERIMENTS.md for the schema.
  [[nodiscard]] std::string ToJson() const;

 private:
  Registry() = default;

  mutable util::Mutex mutex_;
  // The maps are guarded; the *metrics* they point to are internally
  // synchronized atomics, so handles returned by Get*() are usable
  // without the registry lock.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mutex_);
};

// Convenience: Registry::Global().ToJson() written to `path`; throws
// std::runtime_error when the file cannot be opened.
void WriteMetricsJsonFile(const std::string& path);

}  // namespace parapll::obs
