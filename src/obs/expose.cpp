#include "obs/expose.hpp"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/net.hpp"  // defines PARAPLL_HAVE_SOCKETS where sockets exist

#ifdef PARAPLL_HAVE_SOCKETS
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace parapll::obs {

namespace {
// Process-wide health identity behind its own mutex (leaked, like every
// obs singleton, so shutdown-order races cannot touch a dead object).
struct HealthInfoHolder {
  util::Mutex mutex;
  HealthInfo info GUARDED_BY(mutex);
};

HealthInfoHolder& HealthHolder() {
  static HealthInfoHolder* holder = new HealthInfoHolder();
  return *holder;
}
}  // namespace

void SetProcessHealthInfo(const HealthInfo& info) {
  HealthInfoHolder& holder = HealthHolder();
  util::MutexLock lock(holder.mutex);
  holder.info = info;
}

HealthInfo GetProcessHealthInfo() {
  HealthInfoHolder& holder = HealthHolder();
  util::MutexLock lock(holder.mutex);
  return holder.info;
}

namespace {
// Provider hooks the serving daemon registers at Start() and clears at
// Stop(). Leaked holders, same shutdown-order rationale as HealthHolder.
struct ProviderHolder {
  util::Mutex mutex;
  std::function<ServeStatus()> serve_status GUARDED_BY(mutex);
  std::function<std::string()> debug_requests GUARDED_BY(mutex);
};

ProviderHolder& Providers() {
  static ProviderHolder* holder = new ProviderHolder();
  return *holder;
}

// Copies the hook out under the lock, then invokes it unlocked so a
// provider that blocks (or re-enters obs) never holds the holder mutex.
ServeStatus CurrentServeStatus() {
  std::function<ServeStatus()> provider;
  {
    ProviderHolder& holder = Providers();
    util::MutexLock lock(holder.mutex);
    provider = holder.serve_status;
  }
  return provider ? provider() : ServeStatus{};
}

bool CurrentDebugRequests(std::string& body) {
  std::function<std::string()> provider;
  {
    ProviderHolder& holder = Providers();
    util::MutexLock lock(holder.mutex);
    provider = holder.debug_requests;
  }
  if (!provider) {
    return false;
  }
  body = provider();
  return true;
}
}  // namespace

void SetServeStatusProvider(std::function<ServeStatus()> provider) {
  ProviderHolder& holder = Providers();
  util::MutexLock lock(holder.mutex);
  holder.serve_status = std::move(provider);
}

void SetDebugRequestsProvider(std::function<std::string()> provider) {
  ProviderHolder& holder = Providers();
  util::MutexLock lock(holder.mutex);
  holder.debug_requests = std::move(provider);
}

std::string PrometheusMetricName(std::string_view name) {
  std::string out = "parapll_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

namespace {

void WriteDouble(std::ostream& out, double v) {
  // Prometheus accepts plain decimal or scientific notation; default
  // ostream formatting of a double is both.
  std::ostringstream tmp;
  tmp << v;
  out << tmp.str();
}

void RenderHistogram(std::ostream& out, const std::string& pname,
                     const HistogramSnapshot& snap) {
  out << "# TYPE " << pname << " histogram\n";
  // Bucket b holds [2^(b-1), 2^b) (b=0 holds exactly 0); samples are
  // integers, so the inclusive Prometheus upper bound of bucket b is
  // 2^b - 1. Cumulate up to the highest non-empty bucket, then +Inf.
  std::size_t highest = 0;
  for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    if (snap.buckets[b] != 0) {
      highest = b;
    }
  }
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b <= highest; ++b) {
    cumulative += snap.buckets[b];
    const std::uint64_t le =
        b == 0 ? 0 : (std::uint64_t{1} << (b - 1)) * 2 - 1;
    out << pname << "_bucket{le=\"" << le << "\"} " << cumulative;
    // OpenMetrics exemplar: the last sample that landed in this bucket
    // and the request context that produced it, joinable against the
    // slow-query log and profiler contexts on the same id.
    const HistogramExemplar& exemplar = snap.exemplars[b];
    if (exemplar.valid && exemplar.request_id != 0) {
      out << " # {request_id=\"" << ContextIdToString(exemplar.request_id)
          << "\"} " << exemplar.value;
    }
    out << "\n";
  }
  out << pname << "_bucket{le=\"+Inf\"} " << snap.count << "\n";
  out << pname << "_sum " << snap.sum << "\n";
  out << pname << "_count " << snap.count << "\n";
  // Interpolated quantiles as companion gauges (log2-bucket estimates,
  // exact to within the landing bucket — see HistogramSnapshot::Quantile).
  const std::pair<const char*, double> quantiles[] = {
      {"_p50", 0.50}, {"_p90", 0.90}, {"_p99", 0.99}};
  for (const auto& [suffix, q] : quantiles) {
    out << "# TYPE " << pname << suffix << " gauge\n";
    out << pname << suffix << " ";
    WriteDouble(out, snap.Quantile(q));
    out << "\n";
  }
}

}  // namespace

void RenderPrometheusText(const RegistrySnapshot& snapshot,
                          std::ostream& out) {
  for (const auto& [name, value] : snapshot.counters) {
    const std::string pname = PrometheusMetricName(name);
    out << "# TYPE " << pname << " counter\n";
    out << pname << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string pname = PrometheusMetricName(name);
    out << "# TYPE " << pname << " gauge\n";
    out << pname << " ";
    WriteDouble(out, value);
    out << "\n";
  }
  for (const auto& [name, snap] : snapshot.histograms) {
    RenderHistogram(out, PrometheusMetricName(name), snap);
  }
}

std::string RenderPrometheusText(const RegistrySnapshot& snapshot) {
  std::ostringstream out;
  RenderPrometheusText(snapshot, out);
  return out.str();
}

StatsServer::StatsServer(StatsServerOptions options) : options_(options) {}

StatsServer::~StatsServer() { Stop(); }

#ifdef PARAPLL_HAVE_SOCKETS

void StatsServer::Start() {
  util::MutexLock lock(mutex_);
  // acquire: pairs with the release in a finished Start() (see below);
  // the lifecycle mutex already serializes concurrent Start/Stop.
  if (running_.load(std::memory_order_acquire)) {
    return;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("stats server: socket() failed");
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("stats server: cannot bind 127.0.0.1:" +
                             std::to_string(options_.port));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    // Without the resolved port an ephemeral-port server is unreachable;
    // fail Start() cleanly rather than reporting port 0 / garbage.
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("stats server: getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  start_ns_ = TraceNowNs();
  // release: publishes port_/start_ns_ to threads that observe
  // Running() == true via the acquire load.
  running_.store(true, std::memory_order_release);
  worker_ = std::thread([this, fd = listen_fd_] { Serve(fd); });
}

void StatsServer::Stop() {
  // acq_rel: exactly one concurrent Stop() wins the exchange (the rest
  // see false and return), and the winner's subsequent teardown happens
  // after every write the starting thread published.
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  // Take the worker handle and fd under the lifecycle lock, then join and
  // close outside it: the accept loop polls with a timeout and re-checks
  // running_, so it exits within one poll interval.
  std::thread worker;
  int fd = -1;
  {
    util::MutexLock lock(mutex_);
    worker = std::move(worker_);
    fd = listen_fd_;
    listen_fd_ = -1;
  }
  if (worker.joinable()) {
    worker.join();
  }
  if (fd >= 0) {
    ::close(fd);
  }
}

void StatsServer::Serve(int listen_fd) {
  // acquire: sees the stores published by Start(); a stale false only
  // delays shutdown by one 50 ms poll interval.
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) {
      continue;  // timeout or EINTR: re-check running_
    }
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) {
      continue;
    }
    Handle(client);
    ::close(client);
  }
}

void StatsServer::Handle(int client_fd) {
  // Read the request head (we only need the request line). EINTR is
  // routine here — the SIGPROF profiler interrupts poll/recv/send at
  // sample rate — so the util::net helpers retry it; only timeouts,
  // real errors, and orderly shutdown drop the client.
  constexpr std::size_t kMaxRequestLineBytes = 16 * 1024;
  std::string request;
  char buf[2048];
  bool have_line = false;
  while (!have_line) {
    pollfd pfd{client_fd, POLLIN, 0};
    if (util::PollRetry(&pfd, 1, /*timeout_ms=*/500) <= 0) {
      return;  // genuinely slow or dead client: drop it
    }
    const ssize_t n = util::RecvRetry(client_fd, buf, sizeof(buf));
    if (n <= 0) {
      return;
    }
    request.append(buf, static_cast<std::size_t>(n));
    have_line = request.find("\r\n") != std::string::npos;
    if (!have_line && request.size() > kMaxRequestLineBytes) {
      break;  // unterminated request line: answer 400 below, never parse
    }
  }

  std::string method;
  std::string path;
  std::string query;
  if (have_line) {
    std::istringstream line(request.substr(0, request.find("\r\n")));
    line >> method >> path;
    const std::size_t question = path.find('?');
    if (question != std::string::npos) {
      query = path.substr(question + 1);
      path = path.substr(0, question);
    }
  }

  std::string body;
  std::string status = "200 OK";
  std::string content_type = "text/plain; charset=utf-8";
  if (!have_line) {
    status = "400 Bad Request";
    body = "request line exceeds 16 KiB without CRLF\n";
  } else if (method != "GET") {
    status = "405 Method Not Allowed";
    body = "only GET is supported\n";
  } else if (path == "/metrics") {
    ProbeRegistry::Global().Collect();
    body = RenderPrometheusText(Registry::Global().Snapshot());
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/healthz" || path == "/") {
    const HealthInfo health = GetProcessHealthInfo();
    std::ostringstream out;
    util::JsonWriter w(out);
    w.BeginObject();
    w.Key("status").Value("ok");
    w.Key("version").Value(kParaPllVersion);
    w.Key("uptime_seconds")
        .Value(static_cast<double>(TraceNowNs() - start_ns_) / 1e9);
    if (options_.sampler != nullptr) {
      w.Key("telemetry_samples").Value(options_.sampler->TotalSamples());
    }
    const ServeStatus serve = CurrentServeStatus();
    if (serve.valid) {
      w.Key("serve").BeginObject();
      w.Key("queue_depth_pairs").Value(serve.queue_depth_pairs);
      w.Key("shed").Value(serve.shed);
      w.Key("snapshot_age_seconds").Value(serve.snapshot_age_seconds);
      w.EndObject();
    }
    if (health.index_mode.empty()) {
      w.Key("index").Value("none");
    } else {
      w.Key("index").BeginObject();
      w.Key("fingerprint").Value(health.index_fingerprint);
      w.Key("format_version")
          .Value(static_cast<std::uint64_t>(health.index_format_version));
      w.Key("mode").Value(health.index_mode);
      w.Key("num_vertices").Value(health.num_vertices);
      w.Key("roots_completed").Value(health.roots_completed);
      w.EndObject();
    }
    w.EndObject();
    out << '\n';
    body = out.str();
    content_type = "application/json; charset=utf-8";
  } else if (path == "/debug/requests") {
    if (CurrentDebugRequests(body)) {
      content_type = "application/json; charset=utf-8";
    } else {
      status = "404 Not Found";
      body = "no serving daemon registered a request log in this process\n";
    }
  } else if (path == "/debug/profile") {
    HandleDebugProfile(query, status, content_type, body);
  } else {
    status = "404 Not Found";
    body = "try /metrics, /healthz, /debug/requests or /debug/profile\n";
  }

  std::ostringstream response;
  response << "HTTP/1.1 " << status << "\r\n"
           << "Content-Type: " << content_type << "\r\n"
           << "Content-Length: " << body.size() << "\r\n"
           << "Connection: close\r\n\r\n"
           << body;
  // SendAll retries EINTR and short writes; a dead peer just ends the
  // exchange (the connection is closed by the caller either way).
  (void)util::SendAll(client_fd, response.str());
}

void StatsServer::HandleDebugProfile(const std::string& query,
                                     std::string& status,
                                     std::string& content_type,
                                     std::string& body) {
  if (!Profiler::Supported()) {
    status = "501 Not Implemented";
    body = "profiler unsupported on this platform\n";
    return;
  }
  // Parse "?seconds=N" and "&format=json" from the raw query string.
  std::uint64_t seconds = 5;
  bool json = false;
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string::npos) {
      end = query.size();
    }
    const std::string param = query.substr(pos, end - pos);
    if (param.rfind("seconds=", 0) == 0) {
      seconds = std::strtoull(param.c_str() + 8, nullptr, 10);
    } else if (param == "format=json") {
      json = true;
    }
    pos = end + 1;
  }
  if (seconds == 0) {
    seconds = 1;
  }
  if (seconds > 60) {
    seconds = 60;
  }
  Profiler& profiler = Profiler::Global();
  try {
    profiler.Start();
  } catch (const std::exception& e) {
    // Start() throws when a capture is already running (ours or the
    // CLI's) — the caller should retry later, not stack captures.
    status = "409 Conflict";
    body = std::string("profiler busy: ") + e.what() + "\n";
    return;
  }
  // Sleep out the capture window in short slices, bailing out early if
  // the server is being stopped so Stop() joins promptly.
  const std::uint64_t deadline_ns = TraceNowNs() + seconds * 1'000'000'000ULL;
  // acquire: same pairing as Running(); a stale true only costs one more
  // 50 ms slice.
  while (running_.load(std::memory_order_acquire) &&
         TraceNowNs() < deadline_ns) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const ProfileReport report = profiler.Stop();
  std::ostringstream out;
  if (json) {
    report.WriteChromeJsonWithTrace(out);
    content_type = "application/json; charset=utf-8";
  } else {
    out << "# samples " << report.samples << " dropped " << report.dropped
        << " hz " << report.sample_hz << " duration_seconds "
        << report.duration_seconds << "\n";
    report.WriteCollapsed(out);
  }
  body = out.str();
}

#else  // !PARAPLL_HAVE_SOCKETS

void StatsServer::Start() {
  throw std::runtime_error("stats server: no socket support on this platform");
}
void StatsServer::Stop() {}
void StatsServer::Serve(int) {}
void StatsServer::Handle(int) {}
void StatsServer::HandleDebugProfile(const std::string&, std::string&,
                                     std::string&, std::string&) {}

#endif  // PARAPLL_HAVE_SOCKETS

}  // namespace parapll::obs
