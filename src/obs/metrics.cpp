#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace parapll::obs {

namespace {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace

bool MetricsEnabled() {
  // relaxed: independent on/off flag; a stale read only delays when
  // instrumentation sites notice the toggle.
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  // relaxed: see MetricsEnabled.
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace internal {

std::size_t ThreadSlot() {
  static std::atomic<std::size_t> next{0};
  // relaxed: a unique ticket is all that is needed; no data is published.
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace internal

std::uint64_t Counter::Value() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    // relaxed: partial sums; exact only after writers quiesce (contract).
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    // relaxed: Reset is documented to run while writers are quiesced.
    shard.value.store(0, std::memory_order_relaxed);
  }
}

void Gauge::Add(double v) {
  // relaxed CAS loop: the gauge is an independent scalar; the CAS only
  // needs atomicity of the read-modify-write, not ordering.
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}

namespace {

// Bucket 0 holds value 0; bucket b >= 1 holds [2^(b-1), 2^b).
std::size_t BucketOf(std::uint64_t value) {
  return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
}

// Inclusive value range covered by bucket `b`.
std::pair<double, double> BucketRange(std::size_t b) {
  if (b == 0) {
    return {0.0, 0.0};
  }
  const double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
  return {lo, lo * 2.0 - 1.0};
}

// relaxed CAS loops: min/max are independent watermarks; only the
// read-modify-write atomicity matters, not ordering with other data.
void AtomicMin(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  // relaxed: watermark CAS loop, see the comment above AtomicMin.
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  // relaxed: see AtomicMin above.
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

double HistogramSnapshot::Mean() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) {
      continue;
    }
    const std::uint64_t next = seen + buckets[b];
    if (static_cast<double>(next) >= target) {
      const auto [lo, hi] = BucketRange(b);
      const double within =
          buckets[b] == 0
              ? 0.0
              : (target - static_cast<double>(seen)) /
                    static_cast<double>(buckets[b]);
      const double estimate = lo + (hi - lo) * within;
      return std::clamp(estimate, static_cast<double>(min),
                        static_cast<double>(max));
    }
    seen = next;
  }
  return static_cast<double>(max);
}

double HistogramSnapshot::FractionAbove(std::uint64_t threshold) const {
  if (count == 0) {
    return 0.0;
  }
  const double t = static_cast<double>(threshold);
  double above = 0.0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) {
      continue;
    }
    const auto [lo, hi] = BucketRange(b);  // inclusive integer range
    if (t < lo) {
      above += static_cast<double>(buckets[b]);
    } else if (t < hi) {
      above += static_cast<double>(buckets[b]) * (hi - t) / (hi - lo + 1.0);
    }
  }
  return above / static_cast<double>(count);
}

void Histogram::Record(std::uint64_t value) {
  Shard& shard = shards_[internal::ThreadSlot() & (kShards - 1)];
  // relaxed (all stores below): each shard/bucket is an independent
  // partial tally merged by Snapshot(); exactness is only promised once
  // writers have quiesced, so no ordering between the fields is needed.
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

void Histogram::RecordWithExemplar(std::uint64_t value,
                                   std::uint64_t request_id) {
  Record(value);
  ExemplarSlot& slot = exemplars_[BucketOf(value)];
  // relaxed load: a stale version only makes the CAS below fail, which is
  // the documented lossy path.
  std::uint64_t version = slot.version.load(std::memory_order_relaxed);
  if ((version & 1) != 0) {
    return;  // another writer owns the slot: drop this exemplar
  }
  // acquire CAS: wins the slot (odd version) and orders the payload
  // stores below after the claim; losers return without retrying.
  if (!slot.version.compare_exchange_strong(version, version + 1,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed)) {
    return;
  }
  // relaxed payload stores: published by the release version bump below.
  slot.value.store(value, std::memory_order_relaxed);
  slot.request_id.store(request_id, std::memory_order_relaxed);
  // release: makes the payload visible to any reader that observes the
  // new even version.
  slot.version.store(version + 2, std::memory_order_release);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  // relaxed (all loads below): merged view of independent tallies; may
  // mix in-flight Record()s but is exact once writers have quiesced.
  for (const Shard& shard : shards_) {
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    // relaxed: independent bucket tallies, as above.
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  // relaxed (min/max): monotone extremes, exact once writers quiesce.
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = (snap.count == 0 || min == UINT64_MAX) ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    const ExemplarSlot& slot = exemplars_[b];
    for (int attempt = 0; attempt < 4; ++attempt) {
      // acquire: pairs with the writer's release version bump so an even,
      // unchanged version proves the payload reads were not torn.
      const std::uint64_t before = slot.version.load(std::memory_order_acquire);
      if (before == 0) {
        break;  // never written
      }
      if ((before & 1) != 0) {
        continue;  // write in progress: retry
      }
      // relaxed payload loads: validated by the fenced re-check below.
      const std::uint64_t value = slot.value.load(std::memory_order_relaxed);
      const std::uint64_t request_id =
          slot.request_id.load(std::memory_order_relaxed);
      // acquire fence: keeps the payload loads above the version re-check
      // (the textbook seqlock reader ordering).
      std::atomic_thread_fence(std::memory_order_acquire);
      // relaxed: ordered by the fence above; equality proves stability.
      if (slot.version.load(std::memory_order_relaxed) == before) {
        snap.exemplars[b] = {true, value, request_id};
        break;
      }
    }
  }
  return snap;
}

void Histogram::Reset() {
  // relaxed (all stores below): zeroing independent tallies; callers are
  // expected to quiesce writers first, same as Counter::Reset.
  for (Shard& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
  }
  for (auto& bucket : buckets_) {
    // relaxed: zeroing independent tallies, as above.
    bucket.store(0, std::memory_order_relaxed);
  }
  // relaxed (min/max): re-arming the extremes under quiesced writers.
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (ExemplarSlot& slot : exemplars_) {
    // relaxed (all three): zeroing under quiesced writers, as above; a
    // version of 0 reads as "never written".
    slot.value.store(0, std::memory_order_relaxed);
    slot.request_id.store(0, std::memory_order_relaxed);
    slot.version.store(0, std::memory_order_relaxed);
  }
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // leaked: outlives all threads
  return *registry;
}

Counter& Registry::GetCounter(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void Registry::Reset() {
  util::MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

RegistrySnapshot Registry::Snapshot() const {
  util::MutexLock lock(mutex_);
  RegistrySnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace(name, histogram->Snapshot());
  }
  return snap;
}

std::string Registry::ToJson() const {
  util::MutexLock lock(mutex_);
  std::ostringstream out;
  util::JsonWriter w(out);
  w.BeginObject();

  w.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    w.Key(name).Value(counter->Value());
  }
  w.EndObject();

  w.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    w.Key(name).Value(gauge->Value());
  }
  w.EndObject();

  w.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot snap = histogram->Snapshot();
    w.Key(name).BeginObject();
    w.Key("count").Value(snap.count);
    w.Key("sum").Value(snap.sum);
    w.Key("mean").Value(snap.Mean());
    w.Key("min").Value(snap.min);
    w.Key("max").Value(snap.max);
    w.Key("p50").Value(snap.Quantile(0.50));
    w.Key("p90").Value(snap.Quantile(0.90));
    w.Key("p99").Value(snap.Quantile(0.99));
    w.Key("buckets").BeginArray();
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      if (snap.buckets[b] == 0) {
        continue;
      }
      w.BeginArray()
          .Value(b == 0 ? std::uint64_t{0} : std::uint64_t{1} << (b - 1))
          .Value(snap.buckets[b])
          .EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();

  w.EndObject();
  return out.str();
}

void WriteMetricsJsonFile(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  out << Registry::Global().ToJson() << '\n';
}

}  // namespace parapll::obs
