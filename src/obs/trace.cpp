#include "obs/trace.hpp"

#include "obs/metrics.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/json.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace parapll::obs {

namespace {
// relaxed (both accessors): independent on/off flag; a racing toggle only
// decides whether a concurrent span is recorded, never corrupts state.
std::atomic<bool> g_tracing_enabled{false};
}  // namespace

bool TracingEnabled() {
  // relaxed: independent flag, see g_tracing_enabled above.
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  // relaxed: independent flag, see g_tracing_enabled above.
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t TraceNowNs() {
  static const auto anchor = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - anchor)
          .count());
}

struct TraceSink::ThreadBuffer {
  std::uint32_t tid = 0;  // assigned once at registration, then read-only
  mutable util::Mutex mutex;
  std::vector<TraceEvent> events GUARDED_BY(mutex);
};

struct TraceSink::Impl {
  mutable util::Mutex registry_mutex;
  // deque: stable addresses. Guards registration and iteration; each
  // buffer's events are additionally guarded by that buffer's own mutex.
  std::deque<ThreadBuffer> buffers GUARDED_BY(registry_mutex);
  // relaxed (all accesses): independent tuning knob / statistic; neither
  // publishes any other data.
  std::atomic<std::size_t> max_events_per_thread{TraceSink::kDefaultMaxEvents};
  std::atomic<std::uint64_t> dropped{0};
};

TraceSink::Impl* TraceSink::impl() {
  static Impl* impl = new Impl();  // leaked: outlives all threads
  return impl;
}

const TraceSink::Impl* TraceSink::impl() const {
  return const_cast<TraceSink*>(this)->impl();
}

TraceSink& TraceSink::Global() {
  static TraceSink* sink = new TraceSink();
  return *sink;
}

TraceSink::ThreadBuffer& TraceSink::LocalBuffer() {
  thread_local ThreadBuffer* buffer = [this] {
    Impl* i = impl();
    util::MutexLock lock(i->registry_mutex);
    i->buffers.emplace_back();
    ThreadBuffer& fresh = i->buffers.back();
    fresh.tid = static_cast<std::uint32_t>(i->buffers.size() - 1);
    return &fresh;
  }();
  return *buffer;
}

void TraceSink::Record(const TraceEvent& event) {
  Impl* i = impl();
  ThreadBuffer& buffer = LocalBuffer();
  // relaxed: tuning knob, see Impl.
  const std::size_t cap =
      i->max_events_per_thread.load(std::memory_order_relaxed);
  util::MutexLock lock(buffer.mutex);
  if (cap != 0 && buffer.events.size() >= cap) {
    // relaxed: independent statistic, see Impl.
    i->dropped.fetch_add(1, std::memory_order_relaxed);
    static Counter& dropped_counter =
        Registry::Global().GetCounter("trace.dropped_events");
    dropped_counter.Add(1);
    return;
  }
  buffer.events.push_back(event);
}

void TraceSink::SetMaxEventsPerThread(std::size_t cap) {
  // relaxed: tuning knob, see Impl.
  impl()->max_events_per_thread.store(cap, std::memory_order_relaxed);
}

std::size_t TraceSink::MaxEventsPerThread() const {
  // relaxed: tuning knob, see Impl.
  return impl()->max_events_per_thread.load(std::memory_order_relaxed);
}

std::uint64_t TraceSink::DroppedEvents() const {
  // relaxed: independent statistic, see Impl.
  return impl()->dropped.load(std::memory_order_relaxed);
}

std::size_t TraceSink::EventCount() const {
  const Impl* i = impl();
  util::MutexLock lock(i->registry_mutex);
  std::size_t total = 0;
  for (const ThreadBuffer& buffer : i->buffers) {
    util::MutexLock buffer_lock(buffer.mutex);
    total += buffer.events.size();
  }
  return total;
}

void TraceSink::Clear() {
  Impl* i = impl();
  util::MutexLock lock(i->registry_mutex);
  for (ThreadBuffer& buffer : i->buffers) {
    util::MutexLock buffer_lock(buffer.mutex);
    buffer.events.clear();
  }
  // relaxed: independent statistic, see Impl.
  i->dropped.store(0, std::memory_order_relaxed);
}

void TraceSink::AppendChromeEvents(util::JsonWriter& w) const {
  const Impl* i = impl();
  util::MutexLock lock(i->registry_mutex);
  for (const ThreadBuffer& buffer : i->buffers) {
    util::MutexLock buffer_lock(buffer.mutex);
    for (const TraceEvent& e : buffer.events) {
      w.BeginObject();
      w.Key("name").Value(e.name);
      w.Key("cat").Value("parapll");
      w.Key("ph").Value("X");
      w.Key("ts").Value(static_cast<double>(e.start_ns) / 1e3);
      w.Key("dur").Value(static_cast<double>(e.dur_ns) / 1e3);
      w.Key("pid").Value(std::uint64_t{1});
      w.Key("tid").Value(std::uint64_t{buffer.tid});
      if (e.arg_name != nullptr) {
        w.Key("args").BeginObject().Key(e.arg_name).Value(e.arg).EndObject();
      }
      w.EndObject();
    }
  }
}

void TraceSink::WriteChromeJson(std::ostream& out) const {
  util::JsonWriter w(out);
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  AppendChromeEvents(w);
  w.EndArray();
  w.Key("displayTimeUnit").Value("ms");
  w.EndObject();
  out << '\n';
}

std::string TraceSink::ToChromeJson() const {
  std::ostringstream out;
  WriteChromeJson(out);
  return out.str();
}

void TraceSink::WriteChromeJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  WriteChromeJson(out);
}

void Span::Commit() { TraceSink::Global().Record(event_); }

}  // namespace parapll::obs
