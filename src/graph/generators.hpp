// Synthetic graph generators.
//
// The reproduction environment is offline, so the paper's real-world
// datasets (SNAP / CAIDA / TIGER) are replaced by synthetic graphs of the
// same *family*: power-law graphs for social / P2P / AS networks
// (Barabási–Albert, RMAT) and low-degree grid-like graphs for road
// networks. All generators are deterministic given a seed.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace parapll::graph {

// How edge weights σ(e) are drawn.
enum class WeightModel {
  kUnit,        // all weights 1 (unweighted case, original PLL setting)
  kUniform,     // uniform integer in [1, max_weight]
  kRoadLike,    // mostly small with occasional long segments (road networks)
};

struct WeightOptions {
  WeightModel model = WeightModel::kUniform;
  Weight max_weight = 100;
};

// Draws one weight according to `options`.
Weight DrawWeight(const WeightOptions& options, util::Rng& rng);

// Erdős–Rényi G(n, m): m distinct uniform random edges.
Graph ErdosRenyi(VertexId n, std::size_t m, const WeightOptions& weights,
                 std::uint64_t seed);

// Barabási–Albert preferential attachment: each new vertex attaches
// `edges_per_vertex` edges to existing vertices with probability
// proportional to degree. Produces the power-law degree distribution of
// social / collaboration / P2P graphs (paper Fig. 5).
Graph BarabasiAlbert(VertexId n, std::size_t edges_per_vertex,
                     const WeightOptions& weights, std::uint64_t seed);

// R-MAT recursive-matrix generator (a ≥ b,c ≥ d): skewed, community-like
// power-law graphs resembling AS-level topologies (Skitter, AS-Relation).
struct RmatOptions {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
};
Graph Rmat(VertexId scale, std::size_t m, const RmatOptions& rmat,
           const WeightOptions& weights, std::uint64_t seed);

// Watts–Strogatz small world: ring lattice with k neighbors per side,
// rewired with probability beta.
Graph WattsStrogatz(VertexId n, std::size_t k, double beta,
                    const WeightOptions& weights, std::uint64_t seed);

// Road-network-like graph: a rows×cols grid with `keep_fraction` of edges
// retained (holes, like real road maps), a few random "highway" shortcuts,
// and road-like weights. Degree ≤ 4 + shortcuts, matching the flat degree
// distribution of DE/RI/HI-USA in paper Fig. 5.
Graph RoadGrid(VertexId rows, VertexId cols, double keep_fraction,
               std::size_t highways, const WeightOptions& weights,
               std::uint64_t seed);

// A complete graph K_n (testing aid).
Graph Complete(VertexId n, const WeightOptions& weights, std::uint64_t seed);

// A simple path 0-1-2-...-n-1 (testing aid).
Graph Path(VertexId n, const WeightOptions& weights, std::uint64_t seed);

// A star with center 0 (testing aid).
Graph Star(VertexId n, const WeightOptions& weights, std::uint64_t seed);

// A cycle 0-1-...-n-1-0 (testing aid).
Graph Cycle(VertexId n, const WeightOptions& weights, std::uint64_t seed);

}  // namespace parapll::graph
