#include "graph/components.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace parapll::graph {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t UnionFind::Find(std::size_t x) {
  PARAPLL_DCHECK(x < parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(std::size_t a, std::size_t b) {
  std::size_t ra = Find(a);
  std::size_t rb = Find(b);
  if (ra == rb) {
    return false;
  }
  if (size_[ra] < size_[rb]) {
    std::swap(ra, rb);
  }
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return true;
}

std::size_t UnionFind::SizeOf(std::size_t x) { return size_[Find(x)]; }

std::vector<std::size_t> ComponentLabels(const Graph& g) {
  const VertexId n = g.NumVertices();
  UnionFind uf(n);
  for (VertexId u = 0; u < n; ++u) {
    for (const Arc& arc : g.Neighbors(u)) {
      uf.Union(u, arc.target);
    }
  }
  std::vector<std::size_t> labels(n);
  std::vector<std::size_t> remap(n, SIZE_MAX);
  std::size_t next = 0;
  for (VertexId v = 0; v < n; ++v) {
    const std::size_t root = uf.Find(v);
    if (remap[root] == SIZE_MAX) {
      remap[root] = next++;
    }
    labels[v] = remap[root];
  }
  return labels;
}

std::size_t NumComponents(const Graph& g) {
  if (g.NumVertices() == 0) {
    return 0;
  }
  const auto labels = ComponentLabels(g);
  return 1 + *std::max_element(labels.begin(), labels.end());
}

bool IsConnected(const Graph& g) { return NumComponents(g) <= 1; }

Graph LargestComponent(const Graph& g) {
  const VertexId n = g.NumVertices();
  if (n == 0) {
    return g;
  }
  const auto labels = ComponentLabels(g);
  const std::size_t num = 1 + *std::max_element(labels.begin(), labels.end());
  std::vector<std::size_t> sizes(num, 0);
  for (std::size_t label : labels) {
    ++sizes[label];
  }
  const std::size_t best =
      static_cast<std::size_t>(std::max_element(sizes.begin(), sizes.end()) -
                               sizes.begin());
  std::vector<VertexId> remap(n, kInvalidVertex);
  VertexId next = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (labels[v] == best) {
      remap[v] = next++;
    }
  }
  std::vector<Edge> edges;
  for (const Edge& e : g.ToEdgeList()) {
    if (remap[e.u] != kInvalidVertex && remap[e.v] != kInvalidVertex) {
      edges.push_back(Edge{remap[e.u], remap[e.v], e.weight});
    }
  }
  return Graph::FromEdges(next, edges);
}

}  // namespace parapll::graph
