// Graph (de)serialization.
//
// Two formats:
//  * text edge list — "u v w" per line, '#' comments, SNAP-compatible when
//    the weight column is omitted (weight defaults to 1);
//  * binary — a compact little-endian dump with a magic header, used to
//    cache generated datasets between bench runs.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "graph/graph.hpp"

namespace parapll::graph {

// --- text edge list ---------------------------------------------------

// Reads "u v [w]" lines. By default vertex ids are taken literally
// (n = max id + 1, honoring an "n=<count>" token in a leading '#' comment,
// as written by WriteEdgeListText — this makes the text format round-trip
// even with trailing isolated vertices). With compact_ids, sparse ids
// (e.g. raw SNAP dumps) are renumbered densely in first-appearance order.
// Throws std::runtime_error on malformed input.
Graph ReadEdgeListText(std::istream& in, bool compact_ids = false);
Graph ReadEdgeListTextFile(const std::string& path, bool compact_ids = false);

// Writes "u v w" lines (u < v), one undirected edge per line.
void WriteEdgeListText(const Graph& g, std::ostream& out);
void WriteEdgeListTextFile(const Graph& g, const std::string& path);

// --- binary -----------------------------------------------------------

// Binary round-trip: WriteBinary(g) |> ReadBinary == g.
void WriteBinary(const Graph& g, std::ostream& out);
Graph ReadBinary(std::istream& in);
void WriteBinaryFile(const Graph& g, const std::string& path);
Graph ReadBinaryFile(const std::string& path);

}  // namespace parapll::graph
