// Graph (de)serialization.
//
// Two formats:
//  * text edge list — "u v w" per line, '#' comments, SNAP-compatible when
//    the weight column is omitted (weight defaults to 1);
//  * binary — a compact little-endian dump with a magic header, used to
//    cache generated datasets between bench runs.
//
// Both readers treat their bytes as untrusted (files are downloaded,
// copied, or attacker-supplied): malformed fields, out-of-range vertex
// ids, zero/negative/non-numeric weights, and truncation all surface as
// recoverable std::runtime_error — never an abort, a silently truncated
// id, or an allocation sized by a hostile header. `max_vertices` bounds
// the vertex count a stream may declare (and therefore the O(n)
// allocations a parse can trigger); the default admits the full id
// space, callers parsing adversarial input should pass a budget.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "graph/graph.hpp"

namespace parapll::graph {

// --- text edge list ---------------------------------------------------

// Reads "u v [w]" lines. By default vertex ids are taken literally
// (n = max id + 1, honoring an "n=<count>" token in a leading '#' comment,
// as written by WriteEdgeListText — this makes the text format round-trip
// even with trailing isolated vertices). With compact_ids, sparse ids
// (e.g. raw SNAP dumps) are renumbered densely in first-appearance order.
// Fields must be exact decimal integers; weights must be in
// [1, max(Weight)]. Throws std::runtime_error on malformed input.
Graph ReadEdgeListText(std::istream& in, bool compact_ids = false,
                       VertexId max_vertices = kInvalidVertex);
Graph ReadEdgeListTextFile(const std::string& path, bool compact_ids = false,
                           VertexId max_vertices = kInvalidVertex);

// Writes "u v w" lines (u < v), one undirected edge per line.
void WriteEdgeListText(const Graph& g, std::ostream& out);
void WriteEdgeListTextFile(const Graph& g, const std::string& path);

// --- binary -----------------------------------------------------------

// Binary round-trip: WriteBinary(g) |> ReadBinary == g. ReadBinary
// validates the declared vertex count, every edge endpoint, and every
// weight before Graph construction.
void WriteBinary(const Graph& g, std::ostream& out);
Graph ReadBinary(std::istream& in, VertexId max_vertices = kInvalidVertex);
void WriteBinaryFile(const Graph& g, const std::string& path);
Graph ReadBinaryFile(const std::string& path,
                     VertexId max_vertices = kInvalidVertex);

}  // namespace parapll::graph
