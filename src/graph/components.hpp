// Connected components via union–find.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace parapll::graph {

// Disjoint-set forest with union by size and path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  std::size_t Find(std::size_t x);

  // Returns true if the call merged two distinct sets.
  bool Union(std::size_t a, std::size_t b);

  [[nodiscard]] std::size_t NumSets() const { return num_sets_; }
  [[nodiscard]] std::size_t SizeOf(std::size_t x);

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t num_sets_;
};

// Component label of every vertex, labels dense in [0, #components).
std::vector<std::size_t> ComponentLabels(const Graph& g);

std::size_t NumComponents(const Graph& g);

bool IsConnected(const Graph& g);

// The induced subgraph on the largest connected component, with vertices
// compacted to [0, size). PLL handles disconnected graphs fine (queries
// across components return infinity); this is a convenience for workloads
// that want one component.
Graph LargestComponent(const Graph& g);

}  // namespace parapll::graph
