#include "graph/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"

namespace parapll::graph {

const std::vector<DatasetSpec>& PaperCatalog() {
  static const std::vector<DatasetSpec> catalog = {
      {"Wiki-Vote", "Social", 7115, 201524,
       DatasetFamily::kPreferentialAttachment},
      {"Gnutella", "Internet P2P", 10876, 79988,
       DatasetFamily::kRecursiveMatrix},
      {"CondMat", "Collaboration", 23133, 186936,
       DatasetFamily::kPreferentialAttachment},
      {"DE-USA", "Road network", 49109, 121024, DatasetFamily::kRoadGrid},
      {"RI-USA", "Road network", 53658, 137579, DatasetFamily::kRoadGrid},
      {"AS-Relation", "Autonomous Systems", 57272, 983610,
       DatasetFamily::kRecursiveMatrix},
      {"HI-USA", "Road network", 64892, 152450, DatasetFamily::kRoadGrid},
      {"Epinions", "Social", 75879, 811480,
       DatasetFamily::kPreferentialAttachment},
      {"AskUbuntu", "Social", 137517, 508415,
       DatasetFamily::kRecursiveMatrix},
      {"Skitter", "Autonomous Systems", 192244, 1218132,
       DatasetFamily::kRecursiveMatrix},
      {"Euall", "Email Communication", 265214, 730051,
       DatasetFamily::kRecursiveMatrix},
  };
  return catalog;
}

std::optional<DatasetSpec> FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : PaperCatalog()) {
    if (spec.name == name) {
      return spec;
    }
  }
  return std::nullopt;
}

Graph MakeDataset(const DatasetSpec& spec, double scale, std::uint64_t seed) {
  PARAPLL_CHECK(scale > 0.0 && scale <= 1.0);
  const auto n = static_cast<VertexId>(std::max<double>(
      std::llround(static_cast<double>(spec.paper_n) * scale), 64));
  const auto m = static_cast<std::size_t>(std::max<double>(
      std::llround(static_cast<double>(spec.paper_m) * scale),
      static_cast<double>(n)));

  WeightOptions weights;
  weights.model = spec.family == DatasetFamily::kRoadGrid
                      ? WeightModel::kRoadLike
                      : WeightModel::kUniform;
  weights.max_weight = 100;

  switch (spec.family) {
    case DatasetFamily::kPreferentialAttachment: {
      // Each arriving vertex attaches ~m/n edges.
      const std::size_t epv = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::llround(
                 static_cast<double>(m) / static_cast<double>(n))));
      return BarabasiAlbert(n, epv, weights, seed);
    }
    case DatasetFamily::kRecursiveMatrix: {
      // Smallest power of two covering n; LargestComponent() compacts away
      // the isolated ids R-MAT leaves behind.
      VertexId rmat_scale = 1;
      while ((VertexId{1} << rmat_scale) < n) {
        ++rmat_scale;
      }
      Graph g = Rmat(rmat_scale, m, RmatOptions{}, weights, seed);
      return LargestComponent(g);
    }
    case DatasetFamily::kRoadGrid: {
      const auto side = static_cast<VertexId>(
          std::max<double>(std::ceil(std::sqrt(static_cast<double>(n))), 2));
      // A full rows×cols grid has ~2n edges; keep enough to land near the
      // paper's m/n ≈ 2.4–2.6 after the spanning skeleton.
      const double target_ratio =
          static_cast<double>(m) / static_cast<double>(n);
      const double keep = std::clamp(target_ratio / 2.0, 0.55, 1.0);
      const std::size_t highways = n / 200 + 2;
      Graph g = RoadGrid(side, side, keep, highways, weights, seed);
      return LargestComponent(g);
    }
  }
  PARAPLL_CHECK_MSG(false, "unreachable dataset family");
  return Graph();
}

Graph MakeDatasetByName(const std::string& name, double scale,
                        std::uint64_t seed) {
  const auto spec = FindDataset(name);
  PARAPLL_CHECK_MSG(spec.has_value(), "unknown dataset name");
  return MakeDataset(*spec, scale, seed);
}

}  // namespace parapll::graph
