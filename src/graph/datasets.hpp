// Synthetic dataset catalog mirroring paper Table 2.
//
// The paper evaluates on eleven public real-world graphs. This offline
// reproduction regenerates each as a synthetic graph of the same family
// (power-law social / P2P / AS topologies, flat-degree road networks) with
// the same n : m ratio; `scale` shrinks nominal sizes so benches finish on
// one core. Table 2:
//
//   Wiki-Vote     7,115    201,524   Social
//   Gnutella     10,876     79,988   Internet P2P
//   CondMat      23,133    186,936   Collaboration
//   DE-USA       49,109    121,024   Road network
//   RI-USA       53,658    137,579   Road network
//   AS-Relation  57,272    983,610   Autonomous Systems
//   HI-USA       64,892    152,450   Road network
//   Epinions     75,879    811,480   Social
//   AskUbuntu   137,517    508,415   Social
//   Skitter     192,244  1,218,132   Autonomous Systems
//   Euall       265,214    730,051   Email Communication
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace parapll::graph {

// Which generator family reproduces the dataset's degree structure.
enum class DatasetFamily {
  kPreferentialAttachment,  // Barabási–Albert: social / collaboration
  kRecursiveMatrix,         // R-MAT: AS topologies, email, P2P
  kRoadGrid,                // perturbed grid: road networks
};

struct DatasetSpec {
  std::string name;        // paper Table 2 name
  std::string graph_type;  // paper Table 2 "Graph Type"
  VertexId paper_n = 0;
  std::size_t paper_m = 0;
  DatasetFamily family = DatasetFamily::kPreferentialAttachment;
};

// All eleven Table 2 rows, in the paper's order.
const std::vector<DatasetSpec>& PaperCatalog();

// Looks up a catalog row by (case-sensitive) name.
std::optional<DatasetSpec> FindDataset(const std::string& name);

// Instantiates the synthetic stand-in for `spec` at `scale` × paper size
// (0 < scale <= 1). Weighted with uniform integer weights in [1, 100]
// (road networks use the road-like model). Deterministic in `seed`.
Graph MakeDataset(const DatasetSpec& spec, double scale, std::uint64_t seed);

// Convenience: MakeDataset(FindDataset(name), scale, seed).
Graph MakeDatasetByName(const std::string& name, double scale,
                        std::uint64_t seed);

}  // namespace parapll::graph
