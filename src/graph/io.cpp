#include "graph/io.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace parapll::graph {

namespace {

constexpr std::uint64_t kBinaryMagic = 0x50617261504c4c31ULL;  // "ParaPLL1"

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T ReadPod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) {
    throw std::runtime_error("truncated binary graph stream");
  }
  return value;
}

}  // namespace

Graph ReadEdgeListText(std::istream& in, bool compact_ids) {
  std::vector<Edge> edges;
  std::unordered_map<std::uint64_t, VertexId> remap;
  VertexId next_id = 0;
  std::uint64_t max_raw_id = 0;
  std::uint64_t header_n = 0;
  auto intern = [&](std::uint64_t raw) -> VertexId {
    if (!compact_ids) {
      max_raw_id = std::max(max_raw_id, raw);
      return static_cast<VertexId>(raw);
    }
    const auto [it, inserted] = remap.emplace(raw, next_id);
    if (inserted) {
      ++next_id;
    }
    return it->second;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      // Honor an "n=<count>" token so isolated vertices round-trip.
      if (const auto pos = line.find("n="); pos != std::string::npos) {
        header_n = std::strtoull(line.c_str() + pos + 2, nullptr, 10);
      }
      continue;
    }
    std::istringstream fields(line);
    std::uint64_t raw_u = 0;
    std::uint64_t raw_v = 0;
    std::uint64_t raw_w = 1;
    if (!(fields >> raw_u >> raw_v)) {
      throw std::runtime_error("malformed edge on line " +
                               std::to_string(line_no));
    }
    fields >> raw_w;  // optional weight column
    if (raw_w == 0) {
      throw std::runtime_error("zero weight on line " +
                               std::to_string(line_no));
    }
    edges.push_back(
        Edge{intern(raw_u), intern(raw_v), static_cast<Weight>(raw_w)});
  }
  VertexId n = compact_ids
                   ? next_id
                   : static_cast<VertexId>(edges.empty() ? 0 : max_raw_id + 1);
  n = std::max(n, static_cast<VertexId>(header_n));
  return Graph::FromEdges(n, edges);
}

Graph ReadEdgeListTextFile(const std::string& path, bool compact_ids) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  return ReadEdgeListText(in, compact_ids);
}

void WriteEdgeListText(const Graph& g, std::ostream& out) {
  out << "# parapll edge list: n=" << g.NumVertices() << " m=" << g.NumEdges()
      << "\n";
  for (const Edge& e : g.ToEdgeList()) {
    out << e.u << ' ' << e.v << ' ' << e.weight << '\n';
  }
}

void WriteEdgeListTextFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  WriteEdgeListText(g, out);
}

void WriteBinary(const Graph& g, std::ostream& out) {
  WritePod(out, kBinaryMagic);
  WritePod(out, static_cast<std::uint64_t>(g.NumVertices()));
  const std::vector<Edge> edges = g.ToEdgeList();
  WritePod(out, static_cast<std::uint64_t>(edges.size()));
  for (const Edge& e : edges) {
    WritePod(out, e.u);
    WritePod(out, e.v);
    WritePod(out, e.weight);
  }
}

Graph ReadBinary(std::istream& in) {
  if (ReadPod<std::uint64_t>(in) != kBinaryMagic) {
    throw std::runtime_error("bad binary graph magic");
  }
  const auto n = static_cast<VertexId>(ReadPod<std::uint64_t>(in));
  const auto m = ReadPod<std::uint64_t>(in);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    Edge e;
    e.u = ReadPod<VertexId>(in);
    e.v = ReadPod<VertexId>(in);
    e.weight = ReadPod<Weight>(in);
    edges.push_back(e);
  }
  return Graph::FromEdges(n, edges);
}

void WriteBinaryFile(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  WriteBinary(g, out);
}

Graph ReadBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  return ReadBinary(in);
}

}  // namespace parapll::graph
