#include "graph/io.hpp"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace parapll::graph {

// parapll-lint: begin-untrusted-decode

namespace {

constexpr std::uint64_t kBinaryMagic = 0x50617261504c4c31ULL;  // "ParaPLL1"

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T ReadPod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) {
    throw std::runtime_error("truncated binary graph stream");
  }
  return value;
}

[[noreturn]] void ThrowAtLine(const char* what, std::size_t line_no) {
  throw std::runtime_error(std::string(what) + " on line " +
                           std::to_string(line_no));
}

enum class Field { kEnd, kOk, kBad };

// Parses one strictly-decimal unsigned field starting at `pos`. kEnd when
// the line has no more fields; kBad on anything that is not an exact
// decimal integer followed by a separator (signs, "NaN", "2.5", "1e9",
// u64 overflow). Graph files cross a trust boundary, so a field either
// parses exactly or the line is an error — never a silent default, a
// truncated float, or a negative value wrapped through unsigned parsing.
Field TakeField(const std::string& line, std::size_t& pos,
                std::uint64_t& out) {
  while (pos < line.size() &&
         (line[pos] == ' ' || line[pos] == '\t' || line[pos] == '\r')) {
    ++pos;
  }
  if (pos == line.size()) {
    return Field::kEnd;
  }
  const char* begin = line.data() + pos;
  const char* end = line.data() + line.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || ptr == begin) {
    return Field::kBad;
  }
  // The digits must end at a separator or end-of-line; "123abc" and
  // "2.5" are malformed fields, not the integer prefix of one.
  if (ptr != end && *ptr != ' ' && *ptr != '\t' && *ptr != '\r') {
    return Field::kBad;
  }
  pos = static_cast<std::size_t>(ptr - line.data());
  return Field::kOk;
}

}  // namespace

Graph ReadEdgeListText(std::istream& in, bool compact_ids,
                       VertexId max_vertices) {
  std::vector<Edge> edges;
  std::unordered_map<std::uint64_t, VertexId> remap;
  VertexId next_id = 0;
  std::uint64_t max_raw_id = 0;
  std::uint64_t header_n = 0;
  // Every raw id is bounded by the id space and the caller's budget
  // *before* it can influence the vertex-count allocation in FromEdges.
  auto intern = [&](std::uint64_t raw, std::size_t line_no) -> VertexId {
    if (!compact_ids) {
      if (raw >= max_vertices) {
        ThrowAtLine("vertex id out of range", line_no);
      }
      max_raw_id = std::max(max_raw_id, raw);
      return static_cast<VertexId>(raw);
    }
    const auto it = remap.find(raw);
    if (it != remap.end()) {
      return it->second;
    }
    if (next_id >= max_vertices) {
      ThrowAtLine("vertex id out of range", line_no);
    }
    remap.emplace(raw, next_id);
    return next_id++;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      // Honor an "n=<count>" token so isolated vertices round-trip. The
      // declared count sizes the adjacency allocation, so it gets the
      // same bound as a literal id; non-numeric "n=" text is ignored.
      if (const auto pos = line.find("n="); pos != std::string::npos) {
        std::size_t value_pos = pos + 2;
        std::uint64_t value = 0;
        if (TakeField(line, value_pos, value) == Field::kOk) {
          if (value > max_vertices) {
            ThrowAtLine("declared vertex count out of range", line_no);
          }
          header_n = std::max(header_n, value);
        }
      }
      continue;
    }
    std::size_t pos = first;
    std::uint64_t raw_u = 0;
    std::uint64_t raw_v = 0;
    std::uint64_t raw_w = 1;
    if (TakeField(line, pos, raw_u) != Field::kOk ||
        TakeField(line, pos, raw_v) != Field::kOk) {
      ThrowAtLine("malformed edge", line_no);
    }
    // Optional weight column; extra columns beyond it are ignored for
    // SNAP-style dumps that carry timestamps or labels.
    switch (TakeField(line, pos, raw_w)) {
      case Field::kEnd:
      case Field::kOk:
        break;
      case Field::kBad:
        ThrowAtLine("malformed weight", line_no);
    }
    if (raw_w == 0) {
      ThrowAtLine("zero weight", line_no);
    }
    if (raw_w > static_cast<std::uint64_t>(
                    std::numeric_limits<Weight>::max())) {
      ThrowAtLine("weight out of range", line_no);
    }
    edges.push_back(Edge{intern(raw_u, line_no), intern(raw_v, line_no),
                         static_cast<Weight>(raw_w)});
  }
  VertexId n = compact_ids
                   ? next_id
                   : static_cast<VertexId>(edges.empty() ? 0 : max_raw_id + 1);
  n = std::max(n, static_cast<VertexId>(header_n));
  return Graph::FromEdges(n, edges);
}

Graph ReadEdgeListTextFile(const std::string& path, bool compact_ids,
                           VertexId max_vertices) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  return ReadEdgeListText(in, compact_ids, max_vertices);
}

Graph ReadBinary(std::istream& in, VertexId max_vertices) {
  if (ReadPod<std::uint64_t>(in) != kBinaryMagic) {
    throw std::runtime_error("bad binary graph magic");
  }
  const auto n64 = ReadPod<std::uint64_t>(in);
  // Bounds: the declared count sizes O(n) adjacency allocations in
  // FromEdges, so it must fit the id space and the caller's budget
  // before anything is allocated from it.
  if (n64 > max_vertices) {
    throw std::runtime_error("binary graph vertex count out of range");
  }
  const auto n = static_cast<VertexId>(n64);
  const auto m = ReadPod<std::uint64_t>(in);
  std::vector<Edge> edges;
  // Bounds: m is attacker-declared; cap the hint and let push_back grow
  // proportionally to the 12-byte records actually present.
  edges.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(m, std::uint64_t{1} << 16)));
  for (std::uint64_t i = 0; i < m; ++i) {
    Edge e;
    e.u = ReadPod<VertexId>(in);
    e.v = ReadPod<VertexId>(in);
    e.weight = ReadPod<Weight>(in);
    // FromEdges enforces these with a process-aborting check; a corrupt
    // file must surface as a recoverable error instead.
    if (e.u >= n || e.v >= n) {
      throw std::runtime_error("binary graph edge endpoint out of range");
    }
    if (e.weight == 0) {
      throw std::runtime_error("binary graph zero edge weight");
    }
    edges.push_back(e);
  }
  return Graph::FromEdges(n, edges);
}

// parapll-lint: end-untrusted-decode

void WriteEdgeListText(const Graph& g, std::ostream& out) {
  out << "# parapll edge list: n=" << g.NumVertices() << " m=" << g.NumEdges()
      << "\n";
  for (const Edge& e : g.ToEdgeList()) {
    out << e.u << ' ' << e.v << ' ' << e.weight << '\n';
  }
}

void WriteEdgeListTextFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  WriteEdgeListText(g, out);
}

void WriteBinary(const Graph& g, std::ostream& out) {
  WritePod(out, kBinaryMagic);
  WritePod(out, static_cast<std::uint64_t>(g.NumVertices()));
  const std::vector<Edge> edges = g.ToEdgeList();
  WritePod(out, static_cast<std::uint64_t>(edges.size()));
  for (const Edge& e : edges) {
    WritePod(out, e.u);
    WritePod(out, e.v);
    WritePod(out, e.weight);
  }
}

void WriteBinaryFile(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  WriteBinary(g, out);
}

Graph ReadBinaryFile(const std::string& path, VertexId max_vertices) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  return ReadBinary(in, max_vertices);
}

}  // namespace parapll::graph
