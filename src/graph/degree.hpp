// Degree statistics and degree-based vertex orderings.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/stats.hpp"

namespace parapll::graph {

// Vertices sorted by descending degree (ties broken by ascending id) —
// the computing sequence ParaPLL's task manager uses (paper §4.2).
std::vector<VertexId> DescendingDegreeOrder(const Graph& g);

// Exact degree histogram (paper Figure 5).
util::IntHistogram DegreeHistogram(const Graph& g);

struct DegreeStats {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0.0;
  // Least-squares slope of log(count) vs log(degree) over degrees >= 1;
  // strongly negative for power-law graphs, near zero / undefined spread
  // for road grids.
  double log_log_slope = 0.0;
};

DegreeStats ComputeDegreeStats(const Graph& g);

}  // namespace parapll::graph
