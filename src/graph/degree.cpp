#include "graph/degree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace parapll::graph {

std::vector<VertexId> DescendingDegreeOrder(const Graph& g) {
  std::vector<VertexId> order(g.NumVertices());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::stable_sort(order.begin(), order.end(), [&g](VertexId a, VertexId b) {
    return g.Degree(a) > g.Degree(b);
  });
  return order;
}

util::IntHistogram DegreeHistogram(const Graph& g) {
  util::IntHistogram hist;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    hist.Add(g.Degree(v));
  }
  return hist;
}

DegreeStats ComputeDegreeStats(const Graph& g) {
  DegreeStats stats;
  const VertexId n = g.NumVertices();
  if (n == 0) {
    return stats;
  }
  stats.min = g.Degree(0);
  double sum = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const std::size_t d = g.Degree(v);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
    sum += static_cast<double>(d);
  }
  stats.mean = sum / static_cast<double>(n);

  // log–log least squares over the (degree, count) histogram.
  const auto items = DegreeHistogram(g).Items();
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  std::size_t k = 0;
  for (const auto& [degree, count] : items) {
    if (degree == 0) {
      continue;
    }
    const double x = std::log(static_cast<double>(degree));
    const double y = std::log(static_cast<double>(count));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++k;
  }
  if (k >= 2) {
    const double denom = static_cast<double>(k) * sxx - sx * sx;
    if (std::abs(denom) > 1e-12) {
      stats.log_log_slope = (static_cast<double>(k) * sxy - sx * sy) / denom;
    }
  }
  return stats;
}

}  // namespace parapll::graph
