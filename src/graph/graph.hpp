// Compressed-sparse-row weighted undirected graph G = (V, E).
//
// Immutable once built. Each undirected edge {u,v} is stored as two arcs
// (u→v and v→u); parallel edges are collapsed to the minimum weight and
// self-loops are dropped during construction (neither affects shortest-path
// distance).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace parapll::graph {

class Graph {
 public:
  Graph() = default;

  // Builds from an undirected edge list over vertices [0, num_vertices).
  // Edges with u == v are ignored; duplicate {u,v} pairs keep the lightest
  // weight. Edge endpoints must be < num_vertices.
  static Graph FromEdges(VertexId num_vertices, std::span<const Edge> edges);

  // |V| and |E| (undirected edge count, after dedup/self-loop removal).
  [[nodiscard]] VertexId NumVertices() const {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  [[nodiscard]] std::size_t NumEdges() const { return arcs_.size() / 2; }

  // Outgoing arcs of `v`, sorted by target id.
  [[nodiscard]] std::span<const Arc> Neighbors(VertexId v) const {
    return {arcs_.data() + offsets_[v], arcs_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] std::size_t Degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  // Total weight of all undirected edges.
  [[nodiscard]] Distance TotalWeight() const;

  // Maximum edge weight (0 for an edgeless graph).
  [[nodiscard]] Weight MaxWeight() const;

  // The undirected edge list (u < v), sorted; reconstructable input form.
  [[nodiscard]] std::vector<Edge> ToEdgeList() const;

  // Returns a graph with vertices renamed: new id = permutation[old id].
  // `permutation` must be a bijection on [0, n).
  [[nodiscard]] Graph Relabel(std::span<const VertexId> permutation) const;

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<Arc> arcs_;             // size 2|E|
};

// Order-independent-input structural fingerprint of a graph: FNV-1a over
// n and the sorted CSR adjacency (targets + weights). Two graphs compare
// equal iff they fingerprint equal up to 64-bit collisions; build
// manifests use it to pair an index (or checkpoint) with the graph it was
// built from.
[[nodiscard]] std::uint64_t Fingerprint(const Graph& g);

}  // namespace parapll::graph
