#include "graph/graph.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace parapll::graph {

Graph Graph::FromEdges(VertexId num_vertices, std::span<const Edge> edges) {
  // Expand to directed arcs, dropping self-loops.
  std::vector<std::pair<VertexId, Arc>> directed;
  directed.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    PARAPLL_CHECK_MSG(e.u < num_vertices && e.v < num_vertices,
                      "edge endpoint out of range");
    PARAPLL_CHECK_MSG(e.weight > 0, "edge weights must be positive");
    if (e.u == e.v) {
      continue;
    }
    directed.emplace_back(e.u, Arc{e.v, e.weight});
    directed.emplace_back(e.v, Arc{e.u, e.weight});
  }
  std::sort(directed.begin(), directed.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              if (a.second.target != b.second.target)
                return a.second.target < b.second.target;
              return a.second.weight < b.second.weight;
            });
  // Collapse parallel arcs, keeping the lightest (first after sort).
  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  g.arcs_.reserve(directed.size());
  VertexId last_source = kInvalidVertex;
  VertexId last_target = kInvalidVertex;
  for (const auto& [source, arc] : directed) {
    if (source == last_source && arc.target == last_target) {
      continue;
    }
    g.arcs_.push_back(arc);
    ++g.offsets_[source + 1];
    last_source = source;
    last_target = arc.target;
  }
  for (std::size_t v = 1; v <= num_vertices; ++v) {
    g.offsets_[v] += g.offsets_[v - 1];
  }
  return g;
}

Distance Graph::TotalWeight() const {
  Distance total = 0;
  for (const Arc& arc : arcs_) {
    total += arc.weight;
  }
  return total / 2;
}

Weight Graph::MaxWeight() const {
  Weight max_w = 0;
  for (const Arc& arc : arcs_) {
    max_w = std::max(max_w, arc.weight);
  }
  return max_w;
}

std::vector<Edge> Graph::ToEdgeList() const {
  std::vector<Edge> edges;
  edges.reserve(NumEdges());
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (const Arc& arc : Neighbors(u)) {
      if (u < arc.target) {
        edges.push_back(Edge{u, arc.target, arc.weight});
      }
    }
  }
  return edges;
}

Graph Graph::Relabel(std::span<const VertexId> permutation) const {
  const VertexId n = NumVertices();
  PARAPLL_CHECK(permutation.size() == n);
  std::vector<Edge> edges = ToEdgeList();
  for (Edge& e : edges) {
    e.u = permutation[e.u];
    e.v = permutation[e.v];
  }
  return FromEdges(n, edges);
}

std::uint64_t Fingerprint(const Graph& g) {
  // FNV-1a, 64-bit. The CSR form is canonical (sorted arcs, deduped
  // edges), so hashing it directly is input-order independent.
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h = kOffset;
  auto mix = [&h](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (value >> (byte * 8)) & 0xffU;
      h *= kPrime;
    }
  };
  const VertexId n = g.NumVertices();
  mix(n);
  for (VertexId u = 0; u < n; ++u) {
    mix(g.Degree(u));
    for (const Arc& arc : g.Neighbors(u)) {
      mix((static_cast<std::uint64_t>(arc.target) << 32) | arc.weight);
    }
  }
  return h;
}

}  // namespace parapll::graph
