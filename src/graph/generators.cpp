#include "graph/generators.hpp"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace parapll::graph {

namespace {

// Packs an undirected pair (min, max) into one key for dedup sets.
std::uint64_t PairKey(VertexId a, VertexId b) {
  const VertexId lo = std::min(a, b);
  const VertexId hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

Weight DrawWeight(const WeightOptions& options, util::Rng& rng) {
  switch (options.model) {
    case WeightModel::kUnit:
      return 1;
    case WeightModel::kUniform:
      return static_cast<Weight>(1 + rng.Below(options.max_weight));
    case WeightModel::kRoadLike: {
      // 85% short segments, 15% longer stretches.
      const Weight base = static_cast<Weight>(
          1 + rng.Below(std::max<Weight>(options.max_weight / 10, 1)));
      if (rng.Chance(0.15)) {
        return static_cast<Weight>(
            std::min<std::uint64_t>(base * 8ULL, options.max_weight));
      }
      return base;
    }
  }
  return 1;
}

Graph ErdosRenyi(VertexId n, std::size_t m, const WeightOptions& weights,
                 std::uint64_t seed) {
  PARAPLL_CHECK(n >= 2);
  const std::size_t max_edges =
      static_cast<std::size_t>(n) * (n - 1) / 2;
  PARAPLL_CHECK_MSG(m <= max_edges, "too many edges requested");
  util::Rng rng(seed);
  std::set<std::uint64_t> seen;
  std::vector<Edge> edges;
  edges.reserve(m);
  while (edges.size() < m) {
    const auto u = static_cast<VertexId>(rng.Below(n));
    const auto v = static_cast<VertexId>(rng.Below(n));
    if (u == v || !seen.insert(PairKey(u, v)).second) {
      continue;
    }
    edges.push_back(Edge{u, v, DrawWeight(weights, rng)});
  }
  return Graph::FromEdges(n, edges);
}

Graph BarabasiAlbert(VertexId n, std::size_t edges_per_vertex,
                     const WeightOptions& weights, std::uint64_t seed) {
  PARAPLL_CHECK(n >= 2 && edges_per_vertex >= 1);
  util::Rng rng(seed);
  // `targets` holds one entry per arc endpoint, so sampling uniformly from
  // it is sampling proportional to degree.
  std::vector<VertexId> targets;
  std::vector<Edge> edges;
  const VertexId seed_size =
      static_cast<VertexId>(std::min<std::size_t>(edges_per_vertex + 1, n));
  // Seed clique over the first seed_size vertices.
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      edges.push_back(Edge{u, v, DrawWeight(weights, rng)});
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  for (VertexId u = seed_size; u < n; ++u) {
    std::set<VertexId> chosen;
    while (chosen.size() < edges_per_vertex) {
      const VertexId v = targets[rng.Below(targets.size())];
      if (v != u) {
        chosen.insert(v);
      }
    }
    for (VertexId v : chosen) {
      edges.push_back(Edge{u, v, DrawWeight(weights, rng)});
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return Graph::FromEdges(n, edges);
}

Graph Rmat(VertexId scale, std::size_t m, const RmatOptions& rmat,
           const WeightOptions& weights, std::uint64_t seed) {
  PARAPLL_CHECK(scale >= 1 && scale < 31);
  const VertexId n = static_cast<VertexId>(1) << scale;
  util::Rng rng(seed);
  std::set<std::uint64_t> seen;
  std::vector<Edge> edges;
  edges.reserve(m);
  std::size_t attempts = 0;
  const std::size_t max_attempts = m * 64 + 1024;
  while (edges.size() < m && attempts < max_attempts) {
    ++attempts;
    VertexId u = 0;
    VertexId v = 0;
    for (VertexId bit = n >> 1; bit != 0; bit >>= 1) {
      const double r = rng.Real();
      if (r < rmat.a) {
        // top-left quadrant: no bits set
      } else if (r < rmat.a + rmat.b) {
        v |= bit;
      } else if (r < rmat.a + rmat.b + rmat.c) {
        u |= bit;
      } else {
        u |= bit;
        v |= bit;
      }
    }
    if (u == v || !seen.insert(PairKey(u, v)).second) {
      continue;
    }
    edges.push_back(Edge{u, v, DrawWeight(weights, rng)});
  }
  return Graph::FromEdges(n, edges);
}

Graph WattsStrogatz(VertexId n, std::size_t k, double beta,
                    const WeightOptions& weights, std::uint64_t seed) {
  PARAPLL_CHECK(n >= 4 && k >= 1 && 2 * k < n);
  util::Rng rng(seed);
  std::set<std::uint64_t> seen;
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (std::size_t j = 1; j <= k; ++j) {
      VertexId v = static_cast<VertexId>((u + j) % n);
      if (rng.Chance(beta)) {
        // Rewire the far endpoint to a uniform random vertex.
        VertexId w = static_cast<VertexId>(rng.Below(n));
        int tries = 0;
        while ((w == u || seen.count(PairKey(u, w)) != 0) && tries < 32) {
          w = static_cast<VertexId>(rng.Below(n));
          ++tries;
        }
        if (w != u && seen.count(PairKey(u, w)) == 0) {
          v = w;
        }
      }
      if (seen.insert(PairKey(u, v)).second) {
        edges.push_back(Edge{u, v, DrawWeight(weights, rng)});
      }
    }
  }
  return Graph::FromEdges(n, edges);
}

Graph RoadGrid(VertexId rows, VertexId cols, double keep_fraction,
               std::size_t highways, const WeightOptions& weights,
               std::uint64_t seed) {
  PARAPLL_CHECK(rows >= 2 && cols >= 2);
  PARAPLL_CHECK(keep_fraction > 0.0 && keep_fraction <= 1.0);
  const VertexId n = rows * cols;
  util::Rng rng(seed);
  std::vector<Edge> edges;
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      // Keep a spanning skeleton: always connect each non-origin vertex to
      // one previous neighbor so the grid stays connected, drop the other
      // lattice edges with probability 1 - keep_fraction.
      if (c + 1 < cols) {
        const bool skeleton = r == 0;
        if (skeleton || rng.Chance(keep_fraction)) {
          edges.push_back(
              Edge{id(r, c), id(r, c + 1), DrawWeight(weights, rng)});
        }
      }
      if (r + 1 < rows) {
        const bool skeleton = true;  // vertical backbone keeps connectivity
        if (skeleton || rng.Chance(keep_fraction)) {
          edges.push_back(
              Edge{id(r, c), id(r + 1, c), DrawWeight(weights, rng)});
        }
      }
    }
  }
  // Long-range "highways".
  std::set<std::uint64_t> seen;
  for (const Edge& e : edges) {
    seen.insert(PairKey(e.u, e.v));
  }
  std::size_t added = 0;
  while (added < highways) {
    const auto u = static_cast<VertexId>(rng.Below(n));
    const auto v = static_cast<VertexId>(rng.Below(n));
    if (u == v || !seen.insert(PairKey(u, v)).second) {
      continue;
    }
    edges.push_back(Edge{u, v, DrawWeight(weights, rng)});
    ++added;
  }
  return Graph::FromEdges(n, edges);
}

Graph Complete(VertexId n, const WeightOptions& weights, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      edges.push_back(Edge{u, v, DrawWeight(weights, rng)});
    }
  }
  return Graph::FromEdges(n, edges);
}

Graph Path(VertexId n, const WeightOptions& weights, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Edge> edges;
  for (VertexId u = 0; u + 1 < n; ++u) {
    edges.push_back(Edge{u, u + 1, DrawWeight(weights, rng)});
  }
  return Graph::FromEdges(n, edges);
}

Graph Star(VertexId n, const WeightOptions& weights, std::uint64_t seed) {
  PARAPLL_CHECK(n >= 1);
  util::Rng rng(seed);
  std::vector<Edge> edges;
  for (VertexId v = 1; v < n; ++v) {
    edges.push_back(Edge{0, v, DrawWeight(weights, rng)});
  }
  return Graph::FromEdges(n, edges);
}

Graph Cycle(VertexId n, const WeightOptions& weights, std::uint64_t seed) {
  PARAPLL_CHECK(n >= 3);
  util::Rng rng(seed);
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    edges.push_back(
        Edge{u, static_cast<VertexId>((u + 1) % n), DrawWeight(weights, rng)});
  }
  return Graph::FromEdges(n, edges);
}

}  // namespace parapll::graph
