// Fundamental graph value types (paper Table 1 notation).
#pragma once

#include <cstdint>
#include <limits>

namespace parapll::graph {

// Vertex identifier; dense in [0, n).
using VertexId = std::uint32_t;

// Edge weight σ(e) — positive integers, as in the paper's weighted graphs.
using Weight = std::uint32_t;

// A path distance σ(P(s,t)); wide enough that summing n max-weight edges
// cannot overflow.
using Distance = std::uint64_t;

// Distance between disconnected vertices / "not reached yet" sentinel.
inline constexpr Distance kInfiniteDistance =
    std::numeric_limits<Distance>::max();

// Distance addition that clamps at kInfiniteDistance instead of wrapping.
// Inputs at or beyond infinity stay infinite, so a query over labels with
// unreachable / corrupted distances can be "redundant but never wrong":
// a wrapped sum would silently report a too-small distance.
[[nodiscard]] constexpr Distance SaturatingAdd(Distance a, Distance b) {
  return b >= kInfiniteDistance - a ? kInfiniteDistance : a + b;
}

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

// A weighted undirected edge e_{u,v} with σ(e_{u,v}) = weight.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;
  Weight weight = 1;

  friend bool operator==(const Edge&, const Edge&) = default;
};

// An outgoing arc in the CSR adjacency of one vertex.
struct Arc {
  VertexId target = 0;
  Weight weight = 1;

  friend bool operator==(const Arc&, const Arc&) = default;
};

}  // namespace parapll::graph
