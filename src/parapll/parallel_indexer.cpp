#include "parapll/parallel_indexer.hpp"

#include <atomic>
#include <mutex>
#include <thread>

#include "parapll/concurrent_label_store.hpp"
#include "pll/serial_pll.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace parapll::parallel {

ParallelBuildResult BuildParallel(const graph::Graph& g,
                                  const ParallelBuildOptions& options) {
  PARAPLL_CHECK(options.threads >= 1);
  ParallelBuildResult result;
  result.order = pll::ComputeOrder(g, options.ordering, options.seed);
  const graph::Graph rank_graph = pll::ToRankSpace(g, result.order);
  const graph::VertexId n = rank_graph.NumVertices();

  ConcurrentLabelStore labels(n, options.lock_mode);
  const std::size_t p = options.threads;
  std::vector<ThreadReport> reports(p);
  std::vector<pll::PruneStats> totals(p);

  // Completion-order trace: workers claim slots with an atomic cursor.
  std::vector<std::pair<graph::VertexId, std::size_t>> trace;
  std::atomic<std::size_t> trace_cursor{0};
  if (options.record_trace) {
    trace.resize(n);
  }

  // Dynamic policy: the "vertices queue" of Algorithm 2. Because ranks are
  // already sorted by descending degree, an atomic cursor over [0, n) is
  // exactly the locked dequeue of the paper without the lock convoy.
  std::atomic<graph::VertexId> next_rank{0};

  util::WallTimer wall;
  {
    std::vector<std::thread> workers;
    workers.reserve(p);
    for (std::size_t t = 0; t < p; ++t) {
      workers.emplace_back([&, t] {
        pll::PruneScratch scratch(n);
        util::WallTimer busy;
        auto run_root = [&](graph::VertexId root) {
          const pll::PruneStats stats =
              pll::PrunedDijkstra(rank_graph, root, labels, scratch);
          pll::Accumulate(totals[t], stats);
          ++reports[t].roots_processed;
          if (options.record_trace) {
            const std::size_t slot =
                trace_cursor.fetch_add(1, std::memory_order_relaxed);
            trace[slot] = {root, stats.labels_added};
          }
        };
        if (options.policy == AssignmentPolicy::kStatic) {
          for (graph::VertexId root = static_cast<graph::VertexId>(t);
               root < n; root += static_cast<graph::VertexId>(p)) {
            run_root(root);
          }
        } else {
          for (;;) {
            const graph::VertexId root =
                next_rank.fetch_add(1, std::memory_order_relaxed);
            if (root >= n) {
              break;
            }
            run_root(root);
          }
        }
        reports[t].busy_seconds = busy.Seconds();
      });
    }
    for (auto& worker : workers) {
      worker.join();
    }
  }
  result.indexing_seconds = wall.Seconds();

  for (const pll::PruneStats& stats : totals) {
    pll::Accumulate(result.totals, stats);
  }
  result.threads = std::move(reports);
  result.trace = std::move(trace);
  result.store = labels.TakeFinalized();
  return result;
}

}  // namespace parapll::parallel
