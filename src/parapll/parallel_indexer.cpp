#include "parapll/parallel_indexer.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "parapll/concurrent_label_store.hpp"
#include "pll/serial_pll.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace parapll::parallel {

namespace {

// Publishes the per-thread load-balance picture into the registry once
// per build (names like "indexer.thread.3.busy_seconds").
void RecordBuildMetrics(const ParallelBuildResult& result) {
  auto& registry = obs::Registry::Global();
  registry.GetGauge("indexer.wall_seconds").Set(result.indexing_seconds);
  registry.GetGauge("indexer.avg_utilization").Set(result.AvgUtilization());
  registry.GetCounter("indexer.builds").Add(1);
  for (std::size_t t = 0; t < result.threads.size(); ++t) {
    const ThreadReport& report = result.threads[t];
    const std::string prefix = "indexer.thread." + std::to_string(t);
    registry.GetGauge(prefix + ".busy_seconds").Set(report.busy_seconds);
    registry.GetGauge(prefix + ".setup_seconds").Set(report.setup_seconds);
    registry.GetGauge(prefix + ".idle_seconds").Set(report.idle_seconds);
    registry.GetGauge(prefix + ".utilization").Set(report.Utilization());
    registry.GetGauge(prefix + ".roots_processed")
        .Set(static_cast<double>(report.roots_processed));
  }
}

}  // namespace

ParallelBuildResult BuildParallel(const graph::Graph& g,
                                  const ParallelBuildOptions& options) {
  PARAPLL_CHECK(options.threads >= 1);
  PARAPLL_SPAN("build_parallel", "threads", options.threads);
  ParallelBuildResult result;
  result.order = pll::ComputeOrder(g, options.ordering, options.seed);
  const graph::Graph rank_graph = pll::ToRankSpace(g, result.order);
  const graph::VertexId n = rank_graph.NumVertices();

  ConcurrentLabelStore labels(n, options.lock_mode);
  const std::size_t p = options.threads;
  std::vector<ThreadReport> reports(p);
  std::vector<pll::PruneStats> totals(p);

  // Completion-order trace: workers claim slots with an atomic cursor.
  std::vector<std::pair<graph::VertexId, std::size_t>> trace;
  std::atomic<std::size_t> trace_cursor{0};
  if (options.record_trace) {
    trace.resize(n);
  }

  // Dynamic policy: the "vertices queue" of Algorithm 2. Because ranks are
  // already sorted by descending degree, an atomic cursor over [0, n) is
  // exactly the locked dequeue of the paper without the lock convoy.
  std::atomic<graph::VertexId> next_rank{0};

  // Live build progress: roots-done / labels-added / ETA gauges updated
  // once per finished root (a Pruned Dijkstra run dwarfs a gauge store),
  // plus a telemetry probe over the concurrent store's byte count, so a
  // running build is observable per sample instead of only post-hoc.
  const bool metrics = obs::MetricsEnabled();
  std::atomic<graph::VertexId> roots_done{0};
  std::atomic<std::size_t> labels_added{0};
  obs::Gauge* done_gauge = nullptr;
  obs::Gauge* eta_gauge = nullptr;
  obs::Gauge* labels_gauge = nullptr;
  std::optional<obs::ScopedProbe> memory_probe;
  if (metrics) {
    auto& registry = obs::Registry::Global();
    registry.GetGauge("indexer.progress.roots_total")
        .Set(static_cast<double>(n));
    done_gauge = &registry.GetGauge("indexer.progress.roots_done");
    done_gauge->Set(0.0);
    eta_gauge = &registry.GetGauge("indexer.progress.eta_seconds");
    eta_gauge->Set(0.0);
    labels_gauge = &registry.GetGauge("indexer.progress.labels_added");
    labels_gauge->Set(0.0);
    memory_probe.emplace("store.memory_bytes", [&labels] {
      return static_cast<double>(labels.MemoryBytes());
    });
  }

  util::WallTimer wall;
  {
    std::vector<std::thread> workers;
    workers.reserve(p);
    for (std::size_t t = 0; t < p; ++t) {
      workers.emplace_back([&, t] {
        PARAPLL_SPAN("indexer.worker", "thread", t);
        // The wall clock that idle_seconds is derived from must start
        // *after* the O(n) scratch construction: booking setup as idle
        // time inflates the per-thread idle share on large graphs.
        util::WallTimer setup_wall;
        pll::PruneScratch scratch(n);
        reports[t].setup_seconds = setup_wall.Seconds();
        util::WallTimer thread_wall;
        util::AccumulatingTimer busy;
        auto run_root = [&](graph::VertexId root) {
          const pll::PruneStats stats = [&] {
            util::ScopedAccumulate in_dijkstra(busy);
            return pll::PrunedDijkstra(rank_graph, root, labels, scratch);
          }();
          pll::Accumulate(totals[t], stats);
          ++reports[t].roots_processed;
          if (metrics) {
            const auto done =
                roots_done.fetch_add(1, std::memory_order_relaxed) + 1;
            const auto added =
                labels_added.fetch_add(stats.labels_added,
                                       std::memory_order_relaxed) +
                stats.labels_added;
            done_gauge->Set(static_cast<double>(done));
            labels_gauge->Set(static_cast<double>(added));
            // ETA assumes remaining roots cost what finished ones did on
            // average; races between workers just make the last writer
            // win, which is fine for a progress gauge.
            const double elapsed = wall.Seconds();
            eta_gauge->Set(elapsed * static_cast<double>(n - done) /
                           static_cast<double>(done));
          }
          if (options.record_trace) {
            const std::size_t slot =
                trace_cursor.fetch_add(1, std::memory_order_relaxed);
            trace[slot] = {root, stats.labels_added};
          }
        };
        if (options.policy == AssignmentPolicy::kStatic) {
          for (graph::VertexId root = static_cast<graph::VertexId>(t);
               root < n; root += static_cast<graph::VertexId>(p)) {
            run_root(root);
          }
        } else {
          for (;;) {
            const graph::VertexId root =
                next_rank.fetch_add(1, std::memory_order_relaxed);
            if (root >= n) {
              break;
            }
            run_root(root);
          }
        }
        reports[t].busy_seconds = busy.Seconds();
        reports[t].idle_seconds =
            std::max(0.0, thread_wall.Seconds() - busy.Seconds());
      });
    }
    for (auto& worker : workers) {
      worker.join();
    }
  }
  result.indexing_seconds = wall.Seconds();

  for (const pll::PruneStats& stats : totals) {
    pll::Accumulate(result.totals, stats);
  }
  result.threads = std::move(reports);
  result.trace = std::move(trace);
  // Unregister the probe before TakeFinalized moves the rows out — a
  // sampler tick must not read the store mid-move. The gauge keeps the
  // final value.
  if (metrics) {
    obs::Registry::Global()
        .GetGauge("store.memory_bytes")
        .Set(static_cast<double>(labels.MemoryBytes()));
  }
  memory_probe.reset();
  result.store = labels.TakeFinalized();
  if (obs::MetricsEnabled()) {
    RecordBuildMetrics(result);
  }
  return result;
}

}  // namespace parapll::parallel
