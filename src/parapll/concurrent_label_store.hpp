// Shared-memory label store for intra-node ParaPLL.
//
// Multiple Pruned Dijkstra workers concurrently append to and read from
// per-vertex rows. Rows are protected by one of three locking schemes
// (LockMode) so the lock-granularity ablation bench can compare them; the
// paper's Algorithm 2 corresponds to kGlobal ("a semaphore ... only one
// thread can update the label at any time").
//
// Concurrency contract. The store exposes one logical capability,
// row_cap_, standing for "the lock that protects row v under the current
// LockMode" — a global mutex, one of 256 stripes, or a per-row spinlock.
// LockRow/UnlockRow acquire and release that capability, so Clang's
// thread-safety analysis proves every path through ForEach / Append /
// SnapshotRows is lock-balanced. Which *concrete* primitive backs the
// capability is data-dependent (it varies with v and mode_), which is
// beyond the analysis; the underlying std primitives are therefore kept
// raw here — this file is the one documented entry on the project
// linter's raw-sync-primitive allowlist (tools/parapll_lint.py).
#pragma once

#include <atomic>
#include <mutex>
#include <vector>

#include "graph/types.hpp"
#include "obs/metrics.hpp"
#include "parapll/options.hpp"
#include "pll/label_store.hpp"
#include "util/thread_annotations.hpp"

namespace parapll::parallel {

// Marker type for the row-locking discipline; never locked at runtime
// (LockRow locks the concrete primitive), only tracked by the analysis.
class CAPABILITY("row lock") RowCapability {};

class ConcurrentLabelStore {
 public:
  ConcurrentLabelStore(graph::VertexId n, LockMode mode);

  // Seeded construction: resume a build from checkpointed rows. Called
  // before any worker starts, so no locking is needed here.
  ConcurrentLabelStore(std::vector<std::vector<pll::LabelEntry>> rows,
                       LockMode mode);

  ConcurrentLabelStore(const ConcurrentLabelStore&) = delete;
  ConcurrentLabelStore& operator=(const ConcurrentLabelStore&) = delete;

  [[nodiscard]] graph::VertexId NumVertices() const {
    return static_cast<graph::VertexId>(rows_.size());
  }

  // Thread-safe append of (hub, dist) to L(v).
  void Append(graph::VertexId v, graph::VertexId hub, graph::Distance dist);

  // Thread-safe iteration: fn(hub, dist) for every entry currently in
  // L(v). The row lock is held across the callbacks; callbacks must be
  // cheap and must not touch the store.
  template <typename F>
  void ForEach(graph::VertexId v, F&& fn) const {
    LockRow(v);
    for (const pll::LabelEntry& e : rows_[v]) {
      fn(e.hub, e.dist);
    }
    UnlockRow(v);
  }

  [[nodiscard]] std::size_t TotalEntries() const;

  // Approximate resident bytes of the label rows (vector headers plus
  // allocated entry capacity). Maintained as a relaxed atomic updated on
  // row growth, so a telemetry probe can read it from another thread
  // while workers append — the count may lag an in-flight append but is
  // never torn. See obs/telemetry.hpp (gauge "store.memory_bytes").
  [[nodiscard]] std::size_t MemoryBytes() const {
    // relaxed: monotone byte total read by the telemetry thread; a lagging
    // value is acceptable, a torn one impossible.
    return rows_.capacity() * sizeof(std::vector<pll::LabelEntry>) +
           entry_bytes_.load(std::memory_order_relaxed);
  }

  // Moves the rows into an immutable query-stage store. Must only be
  // called after all workers have finished.
  pll::LabelStore TakeFinalized();

  // Copy of every row keeping only entries with hub < limit, taken while
  // workers may still be appending: rows are locked one at a time, so
  // each row copy is internally consistent, and entries from roots
  // >= limit (possibly mid-flight) are excluded. This is the
  // "finalized prefix" a checkpoint persists.
  [[nodiscard]] std::vector<std::vector<pll::LabelEntry>> SnapshotRows(
      graph::VertexId limit) const;

 private:
  // Locks/unlocks the primitive protecting row v under mode_. Const so
  // read paths (ForEach, SnapshotRows) need no const_cast; the concrete
  // primitives are mutable.
  void LockRow(graph::VertexId v) const ACQUIRE(row_cap_);
  void UnlockRow(graph::VertexId v) const RELEASE(row_cap_);
  // Slow path for LockRow when metrics are on: try-lock first so
  // contention (somebody else held our lock) is observable as the
  // "store.lock_contended" counter next to "store.lock_acquired".
  // Deliberately unannotated: it is the body of LockRow's acquisition
  // (only raw primitives move), and LockRow's ACQUIRE is the contract.
  void LockRowCounted(graph::VertexId v) const;

  static constexpr std::size_t kStripes = 256;  // power of two

  LockMode mode_;
  // Per-element protection: rows_[v] may only be touched between
  // LockRow(v) and UnlockRow(v) (or, for TakeFinalized and construction,
  // in a phase where no worker is live). GUARDED_BY cannot express
  // per-element guards, so the discipline is enforced on the lock calls
  // (row_cap_) rather than the container.
  std::vector<std::vector<pll::LabelEntry>> rows_;
  RowCapability row_cap_;
  // The concrete primitives backing row_cap_; raw std types by design
  // (see file comment — linter allowlist raw-sync-primitive).
  mutable std::mutex global_mutex_;
  mutable std::vector<std::mutex> striped_mutexes_;
  mutable std::vector<std::atomic_flag> row_spinlocks_;
  obs::Counter* lock_acquired_;   // registry-owned; never null
  obs::Counter* lock_contended_;
  std::atomic<std::size_t> entry_bytes_{0};  // allocated entry capacity
};

}  // namespace parapll::parallel
