// Shared-memory label store for intra-node ParaPLL.
//
// Multiple Pruned Dijkstra workers concurrently append to and read from
// per-vertex rows. Rows are protected by one of three locking schemes
// (LockMode) so the lock-granularity ablation bench can compare them; the
// paper's Algorithm 2 corresponds to kGlobal ("a semaphore ... only one
// thread can update the label at any time").
#pragma once

#include <atomic>
#include <mutex>
#include <vector>

#include "graph/types.hpp"
#include "obs/metrics.hpp"
#include "parapll/options.hpp"
#include "pll/label_store.hpp"

namespace parapll::parallel {

class ConcurrentLabelStore {
 public:
  ConcurrentLabelStore(graph::VertexId n, LockMode mode);

  // Seeded construction: resume a build from checkpointed rows. Called
  // before any worker starts, so no locking is needed here.
  ConcurrentLabelStore(std::vector<std::vector<pll::LabelEntry>> rows,
                       LockMode mode);

  ConcurrentLabelStore(const ConcurrentLabelStore&) = delete;
  ConcurrentLabelStore& operator=(const ConcurrentLabelStore&) = delete;

  [[nodiscard]] graph::VertexId NumVertices() const {
    return static_cast<graph::VertexId>(rows_.size());
  }

  // Thread-safe append of (hub, dist) to L(v).
  void Append(graph::VertexId v, graph::VertexId hub, graph::Distance dist);

  // Thread-safe iteration: fn(hub, dist) for every entry currently in
  // L(v). The row lock is held across the callbacks; callbacks must be
  // cheap and must not touch the store.
  template <typename F>
  void ForEach(graph::VertexId v, F&& fn) const {
    auto* self = const_cast<ConcurrentLabelStore*>(this);
    self->LockRow(v);
    for (const pll::LabelEntry& e : rows_[v]) {
      fn(e.hub, e.dist);
    }
    self->UnlockRow(v);
  }

  [[nodiscard]] std::size_t TotalEntries() const;

  // Approximate resident bytes of the label rows (vector headers plus
  // allocated entry capacity). Maintained as a relaxed atomic updated on
  // row growth, so a telemetry probe can read it from another thread
  // while workers append — the count may lag an in-flight append but is
  // never torn. See obs/telemetry.hpp (gauge "store.memory_bytes").
  [[nodiscard]] std::size_t MemoryBytes() const {
    return rows_.capacity() * sizeof(std::vector<pll::LabelEntry>) +
           entry_bytes_.load(std::memory_order_relaxed);
  }

  // Moves the rows into an immutable query-stage store. Must only be
  // called after all workers have finished.
  pll::LabelStore TakeFinalized();

  // Copy of every row keeping only entries with hub < limit, taken while
  // workers may still be appending: rows are locked one at a time, so
  // each row copy is internally consistent, and entries from roots
  // >= limit (possibly mid-flight) are excluded. This is the
  // "finalized prefix" a checkpoint persists.
  [[nodiscard]] std::vector<std::vector<pll::LabelEntry>> SnapshotRows(
      graph::VertexId limit) const;

 private:
  void LockRow(graph::VertexId v);
  void UnlockRow(graph::VertexId v);
  // Slow path for LockRow when metrics are on: try-lock first so
  // contention (somebody else held our lock) is observable as the
  // "store.lock_contended" counter next to "store.lock_acquired".
  void LockRowCounted(graph::VertexId v);

  static constexpr std::size_t kStripes = 256;  // power of two

  LockMode mode_;
  std::vector<std::vector<pll::LabelEntry>> rows_;
  mutable std::mutex global_mutex_;
  mutable std::vector<std::mutex> striped_mutexes_;
  mutable std::vector<std::atomic_flag> row_spinlocks_;
  obs::Counter* lock_acquired_;   // registry-owned; never null
  obs::Counter* lock_contended_;
  std::atomic<std::size_t> entry_bytes_{0};  // allocated entry capacity
};

}  // namespace parapll::parallel
