// Intra-node ParaPLL: real-thread parallel indexing (paper §4.3–§4.4).
//
// The task manager reorders vertices by descending degree and hands roots
// to p worker threads under the static or dynamic policy; every worker
// runs Pruned Dijkstra against the shared ConcurrentLabelStore. Relaxed
// label visibility can add redundant labels but never wrong ones (paper
// Proposition 1); `pll::VerifySampled` is the test-suite witness.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "parapll/options.hpp"
#include "pll/index.hpp"
#include "pll/ordering.hpp"
#include "pll/pruned_dijkstra.hpp"

namespace parapll::parallel {

struct ParallelBuildOptions {
  std::size_t threads = 1;
  AssignmentPolicy policy = AssignmentPolicy::kDynamic;
  LockMode lock_mode = LockMode::kStriped;
  pll::OrderingPolicy ordering = pll::OrderingPolicy::kDegree;
  std::uint64_t seed = 0;
  bool record_trace = false;  // per-root labels-added in completion order
};

struct ThreadReport {
  std::size_t roots_processed = 0;
  double busy_seconds = 0.0;  // time spent inside Pruned Dijkstra
  // Time constructing the O(|V|) per-thread scratch arrays before the
  // first root. Booked separately: it is neither useful indexing work nor
  // queue wait, so folding it into idle_seconds would skew the Fig. 8
  // utilization numbers on large graphs.
  double setup_seconds = 0.0;
  // Root-loop lifetime minus busy time: queue wait plus scheduling
  // overhead. Static vs dynamic load imbalance shows up here directly.
  double idle_seconds = 0.0;

  [[nodiscard]] double WallSeconds() const {
    return busy_seconds + idle_seconds;
  }
  // Busy fraction of this worker's lifetime, in [0, 1].
  [[nodiscard]] double Utilization() const {
    const double wall = WallSeconds();
    return wall > 0.0 ? busy_seconds / wall : 0.0;
  }
};

struct ParallelBuildResult {
  pll::LabelStore store;               // rank space
  std::vector<graph::VertexId> order;  // rank -> original id
  double indexing_seconds = 0.0;
  pll::PruneStats totals;
  std::vector<ThreadReport> threads;
  // (root rank, labels added) in global completion order; Fig. 6 input.
  std::vector<std::pair<graph::VertexId, std::size_t>> trace;

  // Convenience: wraps store + order into a queryable Index (copies).
  [[nodiscard]] pll::Index MakeIndex() const {
    return pll::Index(store, order);
  }

  // Mean per-thread Utilization(); 1.0 means perfectly balanced workers.
  [[nodiscard]] double AvgUtilization() const {
    if (threads.empty()) {
      return 0.0;
    }
    double total = 0.0;
    for (const ThreadReport& report : threads) {
      total += report.Utilization();
    }
    return total / static_cast<double>(threads.size());
  }
};

ParallelBuildResult BuildParallel(const graph::Graph& g,
                                  const ParallelBuildOptions& options);

}  // namespace parapll::parallel
