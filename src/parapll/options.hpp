// Shared option types for the intra-node ParaPLL indexers.
#pragma once

#include <string>

namespace parapll::parallel {

// Task-manager policy (paper §4.3 / §4.4).
enum class AssignmentPolicy {
  kStatic,   // round-robin pre-assignment: thread t gets ranks t, t+p, ...
  kDynamic,  // shared ordered queue: free thread takes the next rank
};

// Concurrency control for the shared label store (lock ablation).
enum class LockMode {
  kGlobal,   // one mutex for every row — the paper's Alg. 2 semaphore
  kStriped,  // 2^k mutexes, row v uses stripe v mod 2^k
  kPerRow,   // one spinlock per row
};

std::string ToString(AssignmentPolicy policy);
std::string ToString(LockMode mode);

}  // namespace parapll::parallel
