#include "parapll/concurrent_label_store.hpp"

#include "util/check.hpp"

namespace parapll::parallel {

std::string ToString(AssignmentPolicy policy) {
  return policy == AssignmentPolicy::kStatic ? "static" : "dynamic";
}

std::string ToString(LockMode mode) {
  switch (mode) {
    case LockMode::kGlobal:
      return "global";
    case LockMode::kStriped:
      return "striped";
    case LockMode::kPerRow:
      return "per-row";
  }
  return "?";
}

ConcurrentLabelStore::ConcurrentLabelStore(graph::VertexId n, LockMode mode)
    : mode_(mode),
      rows_(n),
      lock_acquired_(
          &obs::Registry::Global().GetCounter("store.lock_acquired")),
      lock_contended_(
          &obs::Registry::Global().GetCounter("store.lock_contended")) {
  switch (mode_) {
    case LockMode::kGlobal:
      break;
    case LockMode::kStriped:
      striped_mutexes_ = std::vector<std::mutex>(kStripes);
      break;
    case LockMode::kPerRow:
      row_spinlocks_ = std::vector<std::atomic_flag>(n);
      break;
  }
}

ConcurrentLabelStore::ConcurrentLabelStore(
    std::vector<std::vector<pll::LabelEntry>> rows, LockMode mode)
    : ConcurrentLabelStore(static_cast<graph::VertexId>(rows.size()), mode) {
  rows_ = std::move(rows);
  std::size_t bytes = 0;
  for (const auto& row : rows_) {
    bytes += row.capacity() * sizeof(pll::LabelEntry);
  }
  // relaxed: single-threaded construction; workers start strictly later.
  entry_bytes_.store(bytes, std::memory_order_relaxed);
}

void ConcurrentLabelStore::LockRow(graph::VertexId v) const {
  if (obs::MetricsEnabled()) {
    LockRowCounted(v);
    return;
  }
  switch (mode_) {
    case LockMode::kGlobal:
      global_mutex_.lock();
      break;
    case LockMode::kStriped:
      striped_mutexes_[v & (kStripes - 1)].lock();
      break;
    case LockMode::kPerRow:
      // acquire: pairs with the release in UnlockRow so row contents
      // written under the spinlock are visible to the next holder.
      while (row_spinlocks_[v].test_and_set(std::memory_order_acquire)) {
        // spin; rows are short and critical sections tiny
      }
      break;
  }
}

void ConcurrentLabelStore::LockRowCounted(graph::VertexId v) const {
  bool contended = false;
  switch (mode_) {
    case LockMode::kGlobal:
      if (!global_mutex_.try_lock()) {
        contended = true;
        global_mutex_.lock();
      }
      break;
    case LockMode::kStriped: {
      std::mutex& m = striped_mutexes_[v & (kStripes - 1)];
      if (!m.try_lock()) {
        contended = true;
        m.lock();
      }
      break;
    }
    case LockMode::kPerRow:
      // acquire: pairs with the release in UnlockRow (see LockRow).
      if (row_spinlocks_[v].test_and_set(std::memory_order_acquire)) {
        contended = true;
        while (row_spinlocks_[v].test_and_set(std::memory_order_acquire)) {
          // spin; rows are short and critical sections tiny
        }
      }
      break;
  }
  lock_acquired_->Add(1);
  if (contended) {
    lock_contended_->Add(1);
  }
}

void ConcurrentLabelStore::UnlockRow(graph::VertexId v) const {
  switch (mode_) {
    case LockMode::kGlobal:
      global_mutex_.unlock();
      break;
    case LockMode::kStriped:
      striped_mutexes_[v & (kStripes - 1)].unlock();
      break;
    case LockMode::kPerRow:
      // release: publishes this holder's row writes to the next acquirer.
      row_spinlocks_[v].clear(std::memory_order_release);
      break;
  }
}

void ConcurrentLabelStore::Append(graph::VertexId v, graph::VertexId hub,
                                  graph::Distance dist) {
  PARAPLL_DCHECK(v < rows_.size());
  LockRow(v);
  const std::size_t before = rows_[v].capacity();
  rows_[v].push_back(pll::LabelEntry{hub, dist});
  const std::size_t after = rows_[v].capacity();
  UnlockRow(v);
  if (after != before) {
    // relaxed: independent byte counter for the telemetry probe; ordering
    // relative to the row contents is irrelevant (MemoryBytes may lag).
    entry_bytes_.fetch_add((after - before) * sizeof(pll::LabelEntry),
                           std::memory_order_relaxed);
  }
}

std::size_t ConcurrentLabelStore::TotalEntries() const {
  std::size_t total = 0;
  for (graph::VertexId v = 0; v < NumVertices(); ++v) {
    ForEach(v, [&total](graph::VertexId, graph::Distance) { ++total; });
  }
  return total;
}

pll::LabelStore ConcurrentLabelStore::TakeFinalized() {
  return pll::LabelStore::FromRows(std::move(rows_));
}

std::vector<std::vector<pll::LabelEntry>> ConcurrentLabelStore::SnapshotRows(
    graph::VertexId limit) const {
  std::vector<std::vector<pll::LabelEntry>> out(rows_.size());
  for (graph::VertexId v = 0; v < NumVertices(); ++v) {
    LockRow(v);
    for (const pll::LabelEntry& e : rows_[v]) {
      if (e.hub < limit) {
        out[v].push_back(e);
      }
    }
    UnlockRow(v);
  }
  return out;
}

}  // namespace parapll::parallel
